"""The attribution engine: provenance for a finished solution.

Given a solved :class:`~repro.core.Problem` and its best
:class:`~repro.core.Solution`, :func:`explain_solution` computes three
complementary accounts of *why this answer*:

* **GA provenance** — for every GA in the mediated schema, the
  max-similarity member pair that justifies it (the pair whose
  similarity is the GA's internal quality per the paper's F1
  definition), the constraint seed it grew from (if any), and the full
  merge chain: the :class:`~repro.explain.events.PairMerged` events
  that built it, captured by replaying ``Match(S, C, G)`` on the final
  selection under a live event log;
* **source attribution** — a leave-one-out quality delta per selected
  source: ``ΔQ(s) = Q(S) − Q(S∖{s})``, re-evaluated through the same
  :class:`~repro.quality.overall.Objective` machinery the search used,
  so the deltas are exactly consistent with what a re-solve would see;
* **QEF decomposition** — ``Q(S) = Σ w_i·F_i(S)`` term by term; the
  weighted contributions reproduce the reported overall quality to
  float round-off (the invariant the property tests enforce).

Everything here runs *after* the search, reads solver state without
mutating it, and is deterministic; an explain-enabled solve returns
bit-identical solutions (see tests/explain/test_determinism.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core import GlobalAttribute, Problem, Solution, Universe
from ..matching.operator import MatchOperator
from ..quality.overall import Objective
from ..similarity.matrix import NameSimilarityMatrix
from .events import (
    AttrKey,
    DecisionEvent,
    EventLog,
    PairMerged,
    attr_key,
    use_event_log,
)


@dataclass(frozen=True, slots=True)
class QEFContribution:
    """One term of the overall quality: ``weighted = weight · score``."""

    name: str
    weight: float
    score: float
    weighted: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "weight": self.weight,
            "score": self.score,
            "weighted": self.weighted,
        }


@dataclass(frozen=True, slots=True)
class GAProvenance:
    """Why one GA exists, and how it was built.

    Attributes
    ----------
    index:
        1-based display number, matching
        :func:`repro.session.report.render_schema` ordering.
    label:
        The GA's display label (most common member name).
    members:
        Member attribute keys ``(source_id, index, name)``, sorted.
    similarity:
        The GA's internal matching quality — the similarity of the
        justifying pair (0 for singletons, which express no matching).
    justifying_pair:
        The max-similarity member pair per the F1 definition, or None
        for singletons.
    seeded_by:
        Index of the coalesced user GA-constraint seed this GA grew
        from, or None for a purely discovered GA.
    merge_chain:
        The :class:`PairMerged` events that built this GA, in merge
        order (both sides of every chained merge are subsets of the
        GA's members).
    """

    index: int
    label: str
    members: tuple[AttrKey, ...]
    similarity: float
    justifying_pair: tuple[AttrKey, AttrKey] | None
    seeded_by: int | None
    merge_chain: tuple[PairMerged, ...]

    @property
    def size(self) -> int:
        """Number of member attributes."""
        return len(self.members)

    @property
    def source_ids(self) -> tuple[int, ...]:
        """Ids of the sources contributing to this GA, sorted."""
        return tuple(sorted({m[0] for m in self.members}))

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "label": self.label,
            "members": [list(m) for m in self.members],
            "size": self.size,
            "similarity": self.similarity,
            "justifying_pair": (
                [list(p) for p in self.justifying_pair]
                if self.justifying_pair is not None
                else None
            ),
            "seeded_by": self.seeded_by,
            "merge_chain": [e.to_dict() for e in self.merge_chain],
        }


@dataclass(frozen=True, slots=True)
class SourceAttribution:
    """What one selected source contributes, by leave-one-out.

    ``quality_delta`` is ``Q(S) − Q(S∖{s})`` — positive when the source
    pulls its weight.  For constrained sources the reduced selection is
    typically infeasible; ``feasible_without`` records that, and the
    delta is still reported against the reduced selection's raw quality.
    """

    source_id: int
    name: str
    constrained: bool
    quality_delta: float
    objective_delta: float
    feasible_without: bool
    ga_count: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "source_id": self.source_id,
            "name": self.name,
            "constrained": self.constrained,
            "quality_delta": self.quality_delta,
            "objective_delta": self.objective_delta,
            "feasible_without": self.feasible_without,
            "ga_count": self.ga_count,
        }


@dataclass(frozen=True, slots=True)
class SolutionExplanation:
    """The complete provenance account of one solution."""

    selected: tuple[int, ...]
    quality: float
    objective: float
    feasible: bool
    qef_contributions: tuple[QEFContribution, ...]
    gas: tuple[GAProvenance, ...]
    sources: tuple[SourceAttribution, ...]
    match_events: tuple[DecisionEvent, ...] = ()
    search_events: tuple[DecisionEvent, ...] = ()
    notes: tuple[str, ...] = field(default=())

    def decomposition_total(self) -> float:
        """``Σ w_i·F_i`` over the contributions (should equal quality)."""
        return sum(c.weighted for c in self.qef_contributions)

    def ga(self, index: int) -> GAProvenance:
        """Provenance of the GA with the given 1-based display index."""
        for prov in self.gas:
            if prov.index == index:
                return prov
        raise KeyError(f"no GA with display index {index}")

    def source(self, source_id: int) -> SourceAttribution:
        """Attribution of one selected source."""
        for attribution in self.sources:
            if attribution.source_id == source_id:
                return attribution
        raise KeyError(f"source {source_id} is not in the selection")

    def event_counts(self) -> dict[str, int]:
        """Captured events per kind (match + search), for summaries."""
        tally: dict[str, int] = {}
        for event in (*self.match_events, *self.search_events):
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return dict(sorted(tally.items()))

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict form (the ``--format json`` payload)."""
        return {
            "selected": list(self.selected),
            "quality": self.quality,
            "objective": self.objective,
            "feasible": self.feasible,
            "decomposition_total": self.decomposition_total(),
            "qef_contributions": [
                c.to_dict() for c in self.qef_contributions
            ],
            "gas": [g.to_dict() for g in self.gas],
            "sources": [s.to_dict() for s in self.sources],
            "event_counts": self.event_counts(),
            "notes": list(self.notes),
        }


def explain_solution(
    problem: Problem,
    solution: Solution,
    objective: Objective | None = None,
    similarity: NameSimilarityMatrix | None = None,
    search_events: tuple[DecisionEvent, ...] = (),
    capacity: int = 65_536,
) -> SolutionExplanation:
    """Compute the full provenance account for a solved problem.

    Parameters
    ----------
    problem, solution:
        The problem as posed and the solution to explain (normally the
        best solution of a finished search).
    objective:
        The objective used by the search, if available — reusing it
        keeps leave-one-out evaluations on the warm memo.  A fresh one
        is built otherwise.
    similarity:
        Pre-built name-pair matrix (avoids rebuilding when the caller —
        e.g. a :class:`~repro.Session` — already has one).
    search_events:
        Decision events captured live during the solve (optional; the
        match events are always obtained by replaying the final match).
    capacity:
        Ring capacity for the replay event log.
    """
    if objective is None:
        objective = Objective(problem, similarity=similarity)
    operator = objective.match_operator
    matrix = operator.matrix

    # Replay Match(S, C, G) on the final selection under a live event
    # log.  A fresh operator guarantees a cold memo, so Algorithm 1
    # actually runs and emits its seed/merge/defer/eliminate events;
    # clustering is deterministic, so the replayed schema is the
    # solution's schema.
    replay_log = EventLog(capacity=capacity)
    replay_operator = MatchOperator.for_problem(problem, similarity=matrix)
    with use_event_log(replay_log):
        replay_operator.match(solution.selected)
    match_events = tuple(replay_log.events())
    merges = [e for e in match_events if isinstance(e, PairMerged)]

    gas = _ga_provenance(solution, matrix, replay_operator.seeds, merges)
    sources = _source_attribution(problem, solution, objective)
    contributions = _qef_contributions(problem, solution)

    return SolutionExplanation(
        selected=tuple(sorted(solution.selected)),
        quality=solution.quality,
        objective=solution.objective,
        feasible=solution.feasible,
        qef_contributions=contributions,
        gas=gas,
        sources=sources,
        match_events=match_events,
        search_events=tuple(search_events),
    )


def ordered_gas(solution: Solution) -> tuple[GlobalAttribute, ...]:
    """The schema's GAs in display order (render_schema's ordering)."""
    if solution.schema is None:
        return ()
    return tuple(
        sorted(solution.schema, key=lambda ga: (-len(ga), ga.names()))
    )


def change_notes(
    diff,
    explanation: SolutionExplanation,
    universe: Universe,
) -> tuple[str, ...]:
    """Link a :class:`~repro.session.diff.SolutionDiff` to its causes.

    For each GA that grew between two iterations, find in the new GA's
    merge chain the merge that brought the gained attributes and name
    the bridging pair — the "GA 3 grew because constraint seed #2
    bridged title↔booktitle at sim 0.81" sentences.  Source entries and
    exits are annotated with their leave-one-out deltas.
    """
    notes: list[str] = []
    by_members = {prov.members: prov for prov in explanation.gas}

    for old, new in diff.gas_grown:
        prov = by_members.get(tuple(sorted(attr_key(a) for a in new)))
        if prov is None:
            continue
        gained = {attr_key(a) for a in new.attributes - old.attributes}
        bridge = _bridging_merge(prov.merge_chain, gained)
        gained_names = sorted({k[2] for k in gained})
        sentence = (
            f"GA {prov.index} «{prov.label}» grew by "
            f"{{{', '.join(gained_names)}}}"
        )
        if bridge is not None:
            cause = "constraint seed" if bridge.seeded else "merge"
            if bridge.seeded and prov.seeded_by is not None:
                cause = f"constraint seed #{prov.seeded_by + 1}"
            sentence += (
                f" because {cause} bridged {bridge.pair_a[2]}"
                f"↔{bridge.pair_b[2]} at sim {bridge.similarity:.2f}"
            )
        notes.append(sentence)

    for old, new in diff.gas_shrunk:
        prov = by_members.get(tuple(sorted(attr_key(a) for a in new)))
        lost = sorted(a.name for a in old.attributes - new.attributes)
        label = prov.label if prov is not None else new.display_label()
        index = f" {prov.index}" if prov is not None else ""
        notes.append(
            f"GA{index} «{label}» lost {{{', '.join(lost)}}} — its "
            "sources left the selection or no longer reach θ"
        )

    for sid in diff.sources_added:
        try:
            attribution = explanation.source(sid)
        except KeyError:
            continue
        notes.append(
            f"source {attribution.name} entered; removing it now would "
            f"cost ΔQ {attribution.quality_delta:+.4f}"
        )
    for sid in diff.sources_removed:
        notes.append(f"source {universe.source(sid).name} left the selection")
    return tuple(notes)


# -- internals ---------------------------------------------------------------


def _ga_provenance(
    solution: Solution,
    matrix: NameSimilarityMatrix,
    seeds: tuple[GlobalAttribute, ...],
    merges: list[PairMerged],
) -> tuple[GAProvenance, ...]:
    provenance = []
    for number, ga in enumerate(ordered_gas(solution), start=1):
        members = tuple(sorted(attr_key(a) for a in ga))
        member_keys = {m[:2] for m in members}
        chain = tuple(
            e
            for e in merges
            if all(k[:2] in member_keys for k in (*e.left, *e.right))
        )
        seeded_by = next(
            (
                i
                for i, seed in enumerate(seeds)
                if all(attr_key(a)[:2] in member_keys for a in seed)
            ),
            None,
        )
        pair, sim = _justifying_pair(ga, matrix)
        provenance.append(
            GAProvenance(
                index=number,
                label=ga.display_label(),
                members=members,
                similarity=sim,
                justifying_pair=pair,
                seeded_by=seeded_by,
                merge_chain=chain,
            )
        )
    return tuple(provenance)


def _justifying_pair(
    ga: GlobalAttribute, matrix: NameSimilarityMatrix
) -> tuple[tuple[AttrKey, AttrKey] | None, float]:
    """The max-similarity member pair — the F1 justification of the GA."""
    attrs = sorted(ga.attributes, key=lambda a: (a.source_id, a.index))
    if len(attrs) < 2:
        return None, 0.0
    name_ids = matrix.name_ids(a.name for a in attrs)
    block = matrix.block(name_ids, name_ids).copy()
    np.fill_diagonal(block, -np.inf)
    row, col = np.unravel_index(int(np.argmax(block)), block.shape)
    pair = tuple(
        sorted((attr_key(attrs[row]), attr_key(attrs[col])))
    )
    return (pair[0], pair[1]), float(block[row, col])


def _source_attribution(
    problem: Problem, solution: Solution, objective: Objective
) -> tuple[SourceAttribution, ...]:
    constrained = problem.effective_source_constraints
    gas = ordered_gas(solution)
    attributions = []
    for sid in sorted(solution.selected):
        reduced = solution.selected - {sid}
        alternative = objective.evaluate(reduced)
        attributions.append(
            SourceAttribution(
                source_id=sid,
                name=problem.universe.source(sid).name,
                constrained=sid in constrained,
                quality_delta=solution.quality - alternative.quality,
                objective_delta=solution.objective - alternative.objective,
                feasible_without=alternative.feasible,
                ga_count=sum(1 for ga in gas if sid in ga.source_ids),
            )
        )
    return tuple(attributions)


def _qef_contributions(
    problem: Problem, solution: Solution
) -> tuple[QEFContribution, ...]:
    contributions = []
    for name in sorted(solution.qef_scores):
        score = solution.qef_scores[name]
        weight = problem.weights.get(name, 0.0)
        contributions.append(
            QEFContribution(
                name=name,
                weight=weight,
                score=score,
                weighted=weight * score,
            )
        )
    return tuple(contributions)


def _bridging_merge(
    chain: tuple[PairMerged, ...], gained: set[AttrKey]
) -> PairMerged | None:
    """The merge that brought the gained attributes into a grown GA.

    Prefers the merge whose justifying pair crosses the old/new
    boundary (one side gained, one side retained); falls back to any
    merge touching a gained attribute, highest similarity first.
    """
    gained_keys = {k[:2] for k in gained}
    touching = [
        e
        for e in chain
        if any(k[:2] in gained_keys for k in (*e.left, *e.right))
    ]
    if not touching:
        return None
    for event in touching:
        a_gained = event.pair_a[:2] in gained_keys
        b_gained = event.pair_b[:2] in gained_keys
        if a_gained != b_gained:
            return event
    return max(touching, key=lambda e: e.similarity)
