"""Exception hierarchy for the µBE reproduction.

All exceptions raised by this package derive from :class:`ReproError`, so
callers can catch a single type at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidGAError(ReproError):
    """A Global Attribute violates Definition 1 of the paper.

    A GA is valid iff it is non-empty and contains at most one attribute
    from any single source.
    """


class InvalidSchemaError(ReproError):
    """A mediated schema violates Definition 2 of the paper.

    A mediated schema is valid on a set of sources iff its GAs are pairwise
    disjoint and every source contributes at least one attribute to some GA.
    """


class ConstraintError(ReproError):
    """A user constraint is malformed or references unknown sources/attributes."""


class WeightError(ReproError):
    """QEF weights are out of range, mis-keyed, or do not sum to one."""


class SketchError(ReproError):
    """A probabilistic-counting sketch was misconfigured or misused."""


class SearchError(ReproError):
    """An optimizer was misconfigured or could not produce any solution."""


class WorkloadError(ReproError):
    """A synthetic workload generator received inconsistent parameters."""
