"""Deterministic fault injection for the portfolio engine.

The resilience layer (timeouts, retry, pool rebuild, checkpointing —
see docs/resilience.md) is only trustworthy if its failure paths are
*tested* paths, and failure paths are exactly the ones ad-hoc testing
never hits.  This module makes faults a reproducible input: a
:class:`FaultPlan` maps ``(worker_index, attempt)`` coordinates to a
fault kind, and :func:`faulty_spec` wraps any
:class:`~repro.search.parallel.WorkerSpec` so the fault fires inside the
worker — in-process or in a pool child, under ``fork`` or ``spawn`` —
at exactly the planned attempt.

Two engine contracts make this work without the engine knowing faults
exist:

* Worker specs name their optimizer either by registry key or by a
  ``"module:Class"`` dotted path, resolved *inside* the worker process
  (:func:`~repro.search.resolve_optimizer_class`).  The wrapper is
  installed as ``"repro.testing.faults:FaultyOptimizer"``, so a
  ``spawn`` child — a fresh interpreter that never saw the parent's
  runtime state — imports this module and finds it.

* On retry, the engine rewrites the reserved
  :data:`~repro.search.resilience.ATTEMPT_PARAM` spec param
  (``"__attempt__"`` — collision-proof, so a real optimizer's own
  ``attempt`` param is never touched) to the current attempt number
  (:func:`~repro.search.resilience.respec_for_attempt`).  The wrapper
  keys its plan lookup on that param, which is how "crash on attempt 0,
  succeed on attempt 1" is expressible.

Fault kinds:

``"crash"``
    Raise :class:`FaultInjected` — an ordinary worker failure.
``"hang"`` / ``"slow"``
    Sleep ``seconds`` before running the wrapped optimizer.  Against a
    ``worker_timeout`` shorter than the sleep this models a hung worker
    (cancelled in pool mode, recorded post-hoc in-process); with no
    timeout, ``"slow"`` models a slow-starting but correct worker.
``"break_pool"``
    In a pool child, terminate the process abruptly (``os._exit``) so
    the parent sees :class:`~concurrent.futures.process.
    BrokenProcessPool`.  In the parent process — the inline path or the
    engine's degraded fallback — it raises :class:`FaultInjected`
    instead, because exiting there would kill the solve itself.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, replace

import numpy as np

from ..exceptions import SearchError
from ..quality.overall import Objective
from .. import search as _search
from ..search.base import Optimizer, OptimizerConfig, SearchResult
from ..search.resilience import ATTEMPT_PARAM

#: The dotted optimizer name :func:`faulty_spec` installs.
FAULTY_OPTIMIZER = "repro.testing.faults:FaultyOptimizer"

_KINDS = ("crash", "hang", "slow", "break_pool")


class FaultInjected(RuntimeError):
    """The error a planned ``"crash"`` (or inline ``"break_pool"``) raises."""


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One planned fault: *this* worker, *this* attempt, *this* failure."""

    worker: int
    attempt: int
    kind: str
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise SearchError(
                f"unknown fault kind {self.kind!r}; "
                f"available: {', '.join(_KINDS)}"
            )
        if self.seconds < 0:
            raise SearchError(f"fault seconds must be >= 0: {self.seconds}")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A reproducible schedule of faults, keyed on (worker, attempt).

    Plain frozen data so it pickles into worker processes unchanged.
    Coordinates with no entry run clean — which is how every
    retry-then-succeed scenario is written.
    """

    entries: tuple[FaultSpec, ...] = ()

    def find(self, worker: int, attempt: int) -> FaultSpec | None:
        """The planned fault for this coordinate, or None."""
        for entry in self.entries:
            if entry.worker == worker and entry.attempt == attempt:
                return entry
        return None


def seeded_faults(
    seed: int,
    workers: int,
    rate: float = 0.5,
    kinds: tuple[str, ...] = ("crash",),
    attempts: int = 1,
    seconds: float = 0.05,
) -> FaultPlan:
    """A pseudo-random — but seed-reproducible — fault plan.

    Each ``(worker, attempt)`` coordinate below ``attempts`` draws
    independently: with probability ``rate`` it gets a fault whose kind
    is drawn uniformly from ``kinds``.  The draw order is fixed
    (worker-major), so the same seed always yields the same plan — a
    fuzzing loop over seeds explores distinct fault patterns while every
    individual pattern stays replayable.
    """
    rng = np.random.default_rng(seed)
    entries = []
    for worker in range(workers):
        for attempt in range(attempts):
            if rng.random() < rate:
                kind = kinds[int(rng.integers(len(kinds)))]
                entries.append(
                    FaultSpec(
                        worker=worker,
                        attempt=attempt,
                        kind=kind,
                        seconds=seconds,
                    )
                )
    return FaultPlan(entries=tuple(entries))


class FaultyOptimizer(Optimizer):
    """Wraps a real optimizer and fires the planned fault first.

    Constructed inside the worker from spec params: the plan, the
    worker's index, the current attempt (arriving through the reserved
    ``__attempt__`` param the engine rewrites on every retry), and the
    registry name of the optimizer to delegate to once no fault fires.
    The delegate runs with this wrapper's config, so a clean attempt is
    *exactly* the run the unwrapped spec would have produced — which is
    what lets tests assert faulted and unfaulted portfolios converge on
    identical winners.
    """

    name = "faulty"

    def __init__(
        self,
        config: OptimizerConfig | None = None,
        plan: FaultPlan = FaultPlan(),
        worker_index: int = 0,
        inner: str = "local",
        __attempt__: int = 0,
    ):
        super().__init__(config)
        self.plan = plan
        self.worker_index = worker_index
        self.attempt = __attempt__
        self.inner = inner

    def _optimize(
        self,
        objective: Objective,
        initial: frozenset[int] | None = None,
    ) -> SearchResult:
        fault = self.plan.find(self.worker_index, self.attempt)
        if fault is not None:
            self._fire(fault)
        cls = _search.resolve_optimizer_class(self.inner)
        return cls(self.config).optimize(objective, initial=initial)

    def _fire(self, fault: FaultSpec) -> None:
        where = f"worker {self.worker_index} attempt {self.attempt}"
        if fault.kind == "crash":
            raise FaultInjected(f"injected crash in {where}")
        if fault.kind in ("hang", "slow"):
            time.sleep(fault.seconds)
            return
        if fault.kind == "break_pool":
            if multiprocessing.parent_process() is not None:
                # A pool child: die without cleanup so the parent's
                # executor observes BrokenProcessPool, like a real
                # OOM-kill would look.
                os._exit(13)
            raise FaultInjected(
                f"injected pool break in {where} (running in the main "
                f"process, so raising instead of exiting)"
            )


def faulty_spec(index: int, spec, plan: FaultPlan):
    """Wrap a worker spec so ``plan`` faults fire inside that worker.

    Returns a new :class:`~repro.search.parallel.WorkerSpec` running
    :class:`FaultyOptimizer` with the original optimizer as its
    delegate.  ``index`` must be the worker's position in the portfolio
    — the plan is keyed on it, and the engine's retry respec keeps the
    reserved :data:`~repro.search.resilience.ATTEMPT_PARAM` param
    current.
    """
    return replace(
        spec,
        optimizer=FAULTY_OPTIMIZER,
        params=spec.params
        + (
            ("plan", plan),
            ("worker_index", index),
            (ATTEMPT_PARAM, 0),
            ("inner", spec.optimizer),
        ),
    )


__all__ = [
    "FAULTY_OPTIMIZER",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "FaultyOptimizer",
    "faulty_spec",
    "seeded_faults",
]
