"""Deterministic test instrumentation for the solve pipeline.

Everything in here is production-importable on purpose: the fault
injectors ride the ordinary :class:`~repro.search.parallel.WorkerSpec`
mechanism into worker processes (including ``spawn``-started ones), so
they must live in the installed package, not under ``tests/``.
"""

from .faults import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    FaultyOptimizer,
    faulty_spec,
    seeded_faults,
)

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "FaultyOptimizer",
    "faulty_spec",
    "seeded_faults",
]
