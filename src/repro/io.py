"""JSON persistence for universes, schemas and solutions.

µBE's input is a catalog of source descriptions — schemas, data statistics
and characteristics "obtained from a hidden Web search engine or some other
source discovery mechanism, or … provided by the user" (paper §1).  This
module defines that catalog format: a stable, human-editable JSON encoding
of a :class:`~repro.core.Universe` (PCSA signatures travel as base64
payloads so cooperative sources round-trip losslessly), plus encodings for
mediated schemas and solutions so session results can be archived and
diffed between iterations.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path
from typing import Any

import numpy as np

from .core import (
    AttributeRef,
    GlobalAttribute,
    MediatedSchema,
    Solution,
    Source,
    Universe,
)
from .exceptions import ReproError
from .sketch.pcsa import PCSASketch

#: Format tag written into every file for forward compatibility.
FORMAT_VERSION = 1


# -- sketches -----------------------------------------------------------------

def sketch_to_dict(sketch: PCSASketch) -> dict[str, Any]:
    """Encode a PCSA signature (parameters + base64 words)."""
    return {
        "num_maps": sketch.num_maps,
        "map_bits": sketch.map_bits,
        "seed": sketch.seed,
        "words": base64.b64encode(sketch.words.tobytes()).decode("ascii"),
    }


def sketch_from_dict(data: dict[str, Any]) -> PCSASketch:
    """Decode a PCSA signature."""
    words = np.frombuffer(
        base64.b64decode(data["words"]), dtype=np.uint64
    ).copy()
    return PCSASketch(
        num_maps=int(data["num_maps"]),
        map_bits=int(data["map_bits"]),
        seed=int(data["seed"]),
        words=words,
    )


# -- sources and universes ----------------------------------------------------

def source_to_dict(source: Source) -> dict[str, Any]:
    """Encode one source description (tuple data is never persisted)."""
    encoded: dict[str, Any] = {
        "id": source.source_id,
        "name": source.name,
        "schema": list(source.schema),
    }
    if source.cardinality is not None:
        encoded["cardinality"] = source.cardinality
    if source.characteristics:
        encoded["characteristics"] = dict(source.characteristics)
    if source.sketch is not None:
        encoded["sketch"] = sketch_to_dict(source.sketch)
    return encoded


def source_from_dict(data: dict[str, Any]) -> Source:
    """Decode one source description."""
    sketch = None
    if "sketch" in data:
        sketch = sketch_from_dict(data["sketch"])
    return Source(
        int(data["id"]),
        name=str(data["name"]),
        schema=data["schema"],
        cardinality=(
            int(data["cardinality"]) if "cardinality" in data else None
        ),
        characteristics=data.get("characteristics"),
        sketch=sketch,
    )


def universe_to_dict(universe: Universe) -> dict[str, Any]:
    """Encode a full universe catalog."""
    return {
        "format": "mube-universe",
        "version": FORMAT_VERSION,
        "sources": [source_to_dict(s) for s in universe],
    }


def universe_from_dict(data: dict[str, Any]) -> Universe:
    """Decode a universe catalog.

    Raises
    ------
    ReproError
        If the payload is not a supported universe catalog.
    """
    if data.get("format") != "mube-universe":
        raise ReproError(
            f"not a universe catalog (format={data.get('format')!r})"
        )
    if int(data.get("version", 0)) > FORMAT_VERSION:
        raise ReproError(
            f"catalog version {data['version']} is newer than supported "
            f"version {FORMAT_VERSION}"
        )
    return Universe(source_from_dict(s) for s in data["sources"])


def save_universe(universe: Universe, path: str | Path) -> None:
    """Write a universe catalog as JSON."""
    Path(path).write_text(
        json.dumps(universe_to_dict(universe), indent=2), encoding="utf-8"
    )


def load_universe(path: str | Path) -> Universe:
    """Read a universe catalog from JSON."""
    return universe_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )


# -- schemas and solutions ------------------------------------------------------

def ga_to_list(ga: GlobalAttribute) -> list[list[Any]]:
    """Encode a GA as sorted ``[source_id, index, name]`` triples."""
    return [
        [a.source_id, a.index, a.name]
        for a in sorted(ga, key=lambda a: (a.source_id, a.index))
    ]


def ga_from_list(data: list[list[Any]]) -> GlobalAttribute:
    """Decode a GA."""
    return GlobalAttribute(
        AttributeRef(int(sid), int(idx), str(name))
        for sid, idx, name in data
    )


def schema_to_dict(schema: MediatedSchema) -> dict[str, Any]:
    """Encode a mediated schema."""
    gas = sorted(
        (ga_to_list(ga) for ga in schema),
        key=lambda triples: triples[0],
    )
    return {"format": "mube-schema", "version": FORMAT_VERSION, "gas": gas}


def schema_from_dict(data: dict[str, Any]) -> MediatedSchema:
    """Decode a mediated schema.

    Raises
    ------
    ReproError
        If the payload is not a supported schema encoding.
    """
    if data.get("format") != "mube-schema":
        raise ReproError(
            f"not a mediated schema (format={data.get('format')!r})"
        )
    return MediatedSchema(ga_from_list(ga) for ga in data["gas"])


def solution_to_dict(solution: Solution) -> dict[str, Any]:
    """Encode a solution for archiving (schema, scores, feasibility)."""
    return {
        "format": "mube-solution",
        "version": FORMAT_VERSION,
        "selected": sorted(solution.selected),
        "quality": solution.quality,
        "objective": solution.objective,
        "qef_scores": dict(solution.qef_scores),
        "feasible": solution.feasible,
        "infeasibility": list(solution.infeasibility),
        "schema": (
            schema_to_dict(solution.schema)
            if solution.schema is not None
            else None
        ),
    }


def solution_from_dict(data: dict[str, Any]) -> Solution:
    """Decode an archived solution.

    Raises
    ------
    ReproError
        If the payload is not a supported solution encoding.
    """
    if data.get("format") != "mube-solution":
        raise ReproError(
            f"not a solution (format={data.get('format')!r})"
        )
    schema = None
    if data.get("schema") is not None:
        schema = schema_from_dict(data["schema"])
    return Solution(
        selected=frozenset(int(s) for s in data["selected"]),
        schema=schema,
        objective=float(data["objective"]),
        quality=float(data["quality"]),
        qef_scores=dict(data["qef_scores"]),
        feasible=bool(data["feasible"]),
        infeasibility=tuple(data.get("infeasibility", ())),
    )


def save_solution(solution: Solution, path: str | Path) -> None:
    """Write an archived solution as JSON."""
    Path(path).write_text(
        json.dumps(solution_to_dict(solution), indent=2), encoding="utf-8"
    )


def load_solution(path: str | Path) -> Solution:
    """Read an archived solution from JSON."""
    return solution_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )
