"""Schema matching by constrained clustering (paper §3)."""

from .cluster import LINKAGES, Cluster, cluster_similarity
from .compound import (
    CompoundMapping,
    CompoundSpec,
    NMMatch,
    apply_compounds,
    compound_label,
    suggest_compounds,
)
from .greedy import greedy_constrained_clustering, run_clustering_rounds
from .incremental import IncrementalMatchOperator
from .operator import MatchOperator, MatchResult, coalesce_ga_constraints
from .reference import sequential_clustering

__all__ = [
    "Cluster",
    "CompoundMapping",
    "CompoundSpec",
    "IncrementalMatchOperator",
    "LINKAGES",
    "MatchOperator",
    "MatchResult",
    "NMMatch",
    "apply_compounds",
    "cluster_similarity",
    "coalesce_ga_constraints",
    "compound_label",
    "greedy_constrained_clustering",
    "run_clustering_rounds",
    "sequential_clustering",
    "suggest_compounds",
]
