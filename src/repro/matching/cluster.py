"""Working clusters for the constrained clustering algorithm.

A cluster is a growing candidate GA: a set of attributes from distinct
sources.  Clusters seeded from user GA constraints carry ``keep=True`` and
are never eliminated (Algorithm 1, line 3); all other clusters start as
singletons.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..core import AttributeRef, GlobalAttribute
from ..exceptions import ReproError
from ..similarity.matrix import NameSimilarityMatrix

#: Supported cluster-pair linkage rules.  The paper uses single linkage
#: ("the similarity between two clusters [is] the maximum similarity between
#: an attribute from the first cluster and an attribute from the second").
LINKAGES = ("single", "complete", "average")


class Cluster:
    """A mutable-by-replacement candidate GA during clustering."""

    __slots__ = ("attrs", "name_ids", "source_ids", "keep")

    def __init__(
        self,
        attrs: Iterable[AttributeRef],
        name_ids: np.ndarray,
        keep: bool = False,
    ):
        self.attrs = tuple(attrs)
        self.name_ids = name_ids
        self.source_ids = frozenset(a.source_id for a in self.attrs)
        if len(self.source_ids) != len(self.attrs):
            raise ReproError(
                "cluster would contain two attributes from one source"
            )
        self.keep = keep

    @classmethod
    def singleton(
        cls, attr: AttributeRef, matrix: NameSimilarityMatrix
    ) -> "Cluster":
        """A one-attribute cluster."""
        return cls(
            (attr,),
            np.array([matrix.name_id(attr.name)], dtype=np.int64),
        )

    @classmethod
    def from_ga(
        cls, ga: GlobalAttribute, matrix: NameSimilarityMatrix
    ) -> "Cluster":
        """A keep-flagged cluster seeded from a user GA constraint."""
        attrs = tuple(sorted(ga.attributes, key=lambda a: (a.source_id, a.index)))
        return cls(
            attrs,
            matrix.name_ids(a.name for a in attrs),
            keep=True,
        )

    def can_merge(self, other: "Cluster") -> bool:
        """Validity check: the union must have one attribute per source."""
        return self.source_ids.isdisjoint(other.source_ids)

    def merged_with(self, other: "Cluster") -> "Cluster":
        """The union cluster; keep survives if either side had it."""
        return Cluster(
            self.attrs + other.attrs,
            np.concatenate((self.name_ids, other.name_ids)),
            keep=self.keep or other.keep,
        )

    def to_ga(self) -> GlobalAttribute:
        """Freeze the cluster into a GA."""
        return GlobalAttribute(self.attrs)

    def internal_quality(self, matrix: NameSimilarityMatrix) -> float:
        """Quality of matching within the cluster.

        The paper defines this as the maximum similarity between any two
        member attributes; singletons score 0 (they express no matching).
        """
        if len(self.attrs) < 2:
            return 0.0
        block = matrix.block(self.name_ids, self.name_ids)
        # Ignore the diagonal (self similarity).
        masked = block - np.eye(len(self.name_ids)) * 2.0
        return float(masked.max())

    def __len__(self) -> int:
        return len(self.attrs)

    def __repr__(self) -> str:
        flag = ", keep" if self.keep else ""
        names = ", ".join(a.name for a in self.attrs[:4])
        suffix = ", ..." if len(self.attrs) > 4 else ""
        return f"Cluster([{names}{suffix}]{flag})"


def cluster_similarity(
    a: Cluster,
    b: Cluster,
    matrix: NameSimilarityMatrix,
    linkage: str = "single",
) -> float:
    """Similarity between two clusters under the chosen linkage rule."""
    block = matrix.block(a.name_ids, b.name_ids)
    if linkage == "single":
        return float(block.max())
    if linkage == "complete":
        return float(block.min())
    if linkage == "average":
        return float(block.mean())
    raise ReproError(
        f"unknown linkage {linkage!r}; expected one of {LINKAGES}"
    )
