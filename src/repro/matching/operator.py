"""The schema matching operator ``Match(S, C, G)`` (paper §3).

``Match`` determines the best matching between the schemas of the sources in
``S``, returning the mediated schema ``M`` and the matching-quality QEF
value ``F1(S)``.  It must honour the user's source constraints ``C`` (the
result must be valid on ``C``) and GA constraints ``G`` (``G ⊑ M``).

:class:`MatchOperator` binds a universe, a similarity matrix and the problem
parameters once, then evaluates arbitrary selections with memoization —
the operator is a pure function of the selection, so caching by source-set
is sound and is what makes iterative search affordable.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..core import (
    GlobalAttribute,
    MediatedSchema,
    Problem,
    Universe,
)
from ..exceptions import ConstraintError
from ..similarity.matrix import NameSimilarityMatrix
from ..similarity.measures import SimilarityMeasure, default_measure
from ..telemetry import get_profiler, get_telemetry
from .cluster import Cluster
from .greedy import greedy_constrained_clustering


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of one ``Match(S, C, G)`` call.

    Attributes
    ----------
    schema:
        The mediated schema, or None when the constraints are unsatisfiable
        for this selection (the paper's NULL result).
    quality:
        ``F1(S)`` — the mean internal matching quality over the schema's
        GAs (0 for a NULL or empty schema).
    unspanned_source_ids:
        Selected sources that contribute no attribute to any GA.  Only
        constrained sources among these make the result NULL; the rest are
        diagnostic.
    reasons:
        Human-readable explanations when ``schema`` is None.
    """

    schema: MediatedSchema | None
    quality: float
    unspanned_source_ids: frozenset[int] = frozenset()
    reasons: tuple[str, ...] = ()

    @property
    def is_null(self) -> bool:
        """True when Match returned the paper's NULL result."""
        return self.schema is None


class MatchOperator:
    """``Match(S)`` with the constraints and parameters bound at creation."""

    def __init__(
        self,
        universe: Universe,
        source_constraints: Iterable[int] = (),
        ga_constraints: Sequence[GlobalAttribute] = (),
        theta: float = 0.65,
        beta: int = 2,
        similarity: SimilarityMeasure | NameSimilarityMatrix | None = None,
        linkage: str = "single",
        prune: bool = True,
        cache_size: int = 200_000,
    ):
        self.universe = universe
        self.theta = theta
        self.beta = beta
        self.linkage = linkage
        self.prune = prune
        self.matrix = _resolve_matrix(universe, similarity)
        self.seeds = coalesce_ga_constraints(ga_constraints)
        implied = {
            attr.source_id for seed in self.seeds for attr in seed
        }
        self._implied_ids = frozenset(implied)
        self.required_source_ids = (
            frozenset(source_constraints) | self._implied_ids
        )
        self._cache: OrderedDict[frozenset[int], MatchResult] = (
            OrderedDict()
        )
        self._cache_size = cache_size
        self.memo_evictions = 0
        #: Plain-int memo traffic counters; kept independent of telemetry so
        #: SearchStats can report them even under the no-op tracer.
        self.memo_hits = 0
        self.memo_misses = 0
        get_telemetry().metrics.gauge("match.constraint_seeds").set(
            len(self.seeds)
        )
        get_profiler().add_cache_probe("match.memo", self.cache_info)

    @classmethod
    def for_problem(
        cls,
        problem: Problem,
        similarity: SimilarityMeasure | NameSimilarityMatrix | None = None,
        linkage: str = "single",
        prune: bool = True,
        **kwargs,
    ) -> "MatchOperator":
        """Build the operator a :class:`~repro.core.Problem` describes."""
        return cls(
            problem.universe,
            source_constraints=problem.source_constraints,
            ga_constraints=problem.ga_constraints,
            theta=problem.theta,
            beta=problem.beta,
            similarity=similarity,
            linkage=linkage,
            prune=prune,
            **kwargs,
        )

    def match(self, source_ids: Iterable[int]) -> MatchResult:
        """Evaluate ``Match(S)`` for the given selection (memoized)."""
        telemetry = get_telemetry()
        selection = frozenset(source_ids)
        cached = self._cache.get(selection)
        if cached is not None:
            self._cache.move_to_end(selection)
            self.memo_hits += 1
            telemetry.metrics.counter("match.memo_hits").inc()
            return cached
        self.memo_misses += 1
        telemetry.metrics.counter("match.memo_misses").inc()
        with get_profiler().phase("matching"), telemetry.span(
            "match.evaluate", size=len(selection)
        ) as span:
            result = self._match_uncached(selection)
            span.set(null=result.is_null)
        while self._cache and len(self._cache) >= self._cache_size:
            # LRU eviction: drop the stalest selection, never the whole
            # memo — a warm solve loop keeps its hot neighborhoods.
            self._cache.popitem(last=False)
            self.memo_evictions += 1
            telemetry.metrics.counter("match.cache_evictions").inc()
        self._cache[selection] = result
        return result

    def ga_quality(self, ga: GlobalAttribute) -> float:
        """``F1({g})`` — internal matching quality of a single GA."""
        cluster = Cluster.from_ga(ga, self.matrix)
        return cluster.internal_quality(self.matrix)

    def cache_info(self) -> dict[str, int]:
        """Cache statistics for diagnostics."""
        return {
            "entries": len(self._cache),
            "capacity": self._cache_size,
            "hits": self.memo_hits,
            "misses": self.memo_misses,
            "evictions": self.memo_evictions,
        }

    # -- delta retargeting ---------------------------------------------------

    def retarget_constraints(
        self, source_constraints: Iterable[int]
    ) -> dict[str, int]:
        """Re-point the source constraints ``C`` without losing the memo.

        Clustering never looks at ``C`` — only the pre-check (are all
        constrained sources selected?) and the post-check (did every
        constrained source span the schema?) do — so a cached result can
        be *rewritten* for new constraints instead of recomputed:

        * a selection now missing a constrained source becomes the exact
          NULL result the cold path would produce;
        * a cached schema whose recorded unspanned set hits the new
          constraints becomes the exact θ-NULL result, and one that does
          not keeps its schema and quality verbatim;
        * a cached NULL that would now need the schema (its selection
          satisfies the new constraints) is dropped and re-scored on
          demand.

        θ, β and the GA constraints must be unchanged (they shape the
        clustering itself); the session's delta planner rebuilds the
        operator when they move.  Returns kept/rederived/dropped entry
        counts.
        """
        old_required = self.required_source_ids
        new_required = (
            frozenset(source_constraints) | self._implied_ids
        )
        stats = {"kept": 0, "rederived": 0, "dropped": 0}
        if new_required == old_required:
            stats["kept"] = len(self._cache)
            return stats
        self.required_source_ids = new_required
        fresh: OrderedDict[frozenset[int], MatchResult] = OrderedDict()
        for selection, result in self._cache.items():
            rewritten = self._retargeted_result(
                selection, result, old_required, new_required
            )
            if rewritten is None:
                stats["dropped"] += 1
                continue
            stats["kept" if rewritten is result else "rederived"] += 1
            fresh[selection] = rewritten
        self._cache = fresh
        metrics = get_telemetry().metrics
        for key, value in stats.items():
            if value:
                metrics.counter(f"match.retarget.{key}").inc(value)
        return stats

    @staticmethod
    def _retargeted_result(
        selection: frozenset[int],
        result: MatchResult,
        old_required: frozenset[int],
        new_required: frozenset[int],
    ) -> MatchResult | None:
        """``result`` rewritten for new constraints, or None to drop it."""
        missing = new_required - selection
        if missing:
            rewritten = MatchResult(
                None,
                0.0,
                reasons=(
                    f"selection omits constrained source(s) "
                    f"{sorted(missing)}",
                ),
            )
            return result if rewritten == result else rewritten
        if result.schema is not None:
            constrained_unspanned = (
                result.unspanned_source_ids & new_required
            )
            if not constrained_unspanned:
                return result
            return MatchResult(
                None,
                0.0,
                unspanned_source_ids=result.unspanned_source_ids,
                reasons=(
                    "no matching satisfies θ for constrained source(s) "
                    f"{sorted(constrained_unspanned)}",
                ),
            )
        if old_required - selection:
            # NULL because constrained sources were absent: the selection
            # was never clustered, so there is no schema or unspanned
            # record to rewrite from.
            return None
        constrained_unspanned = result.unspanned_source_ids & new_required
        if constrained_unspanned:
            rewritten = MatchResult(
                None,
                0.0,
                unspanned_source_ids=result.unspanned_source_ids,
                reasons=(
                    "no matching satisfies θ for constrained source(s) "
                    f"{sorted(constrained_unspanned)}",
                ),
            )
            return result if rewritten == result else rewritten
        return None

    def retarget_universe(
        self,
        universe: Universe,
        similarity: SimilarityMeasure | NameSimilarityMatrix | None,
        removed_ids: Iterable[int] = (),
    ) -> dict[str, int]:
        """Re-point the operator at an edited universe, keeping the memo.

        ``Match(S)`` reads only the *selected* sources, so adding a source
        invalidates nothing: every cached selection still evaluates
        identically under the grown universe.  Removing sources drops
        exactly the entries whose selection touches a removed id.  The
        similarity matrix may only *grow* its vocabulary (appended names
        keep existing ids stable — see
        :meth:`~repro.similarity.NameSimilarityMatrix.extended`); pass
        the extended matrix here.  Constraints must not reference removed
        sources — release them first.
        """
        removed = frozenset(removed_ids)
        conflicted = self.required_source_ids & removed
        if conflicted:
            raise ConstraintError(
                f"cannot retarget: removed source(s) {sorted(conflicted)} "
                f"are still constrained"
            )
        self.universe = universe
        self.matrix = _resolve_matrix(universe, similarity)
        stats = {"kept": len(self._cache), "dropped": 0}
        if removed:
            fresh: OrderedDict[frozenset[int], MatchResult] = OrderedDict()
            for selection, result in self._cache.items():
                if selection & removed:
                    stats["dropped"] += 1
                else:
                    fresh[selection] = result
            stats["kept"] = len(fresh)
            self._cache = fresh
        metrics = get_telemetry().metrics
        metrics.counter("match.retarget.universe").inc()
        if stats["dropped"]:
            metrics.counter("match.retarget.dropped").inc(stats["dropped"])
        return stats

    # -- internals ----------------------------------------------------------

    def _match_uncached(self, selection: frozenset[int]) -> MatchResult:
        reasons: list[str] = []
        missing = self.required_source_ids - selection
        if missing:
            reasons.append(
                f"selection omits constrained source(s) {sorted(missing)}"
            )
            return MatchResult(None, 0.0, reasons=tuple(reasons))

        free_attrs = self._free_attributes(selection)
        clusters = greedy_constrained_clustering(
            free_attrs,
            self.seeds,
            self.matrix,
            self.theta,
            linkage=self.linkage,
            prune=self.prune,
        )
        gas = [
            cluster.to_ga()
            for cluster in clusters
            if cluster.keep or len(cluster) >= self.beta
        ]
        schema = MediatedSchema(gas)

        unspanned = schema.unspanned_source_ids(selection)
        constrained_unspanned = unspanned & self.required_source_ids
        if constrained_unspanned:
            # M is not valid on C: a constrained source matched nothing.
            reasons.append(
                "no matching satisfies θ for constrained source(s) "
                f"{sorted(constrained_unspanned)}"
            )
            return MatchResult(
                None, 0.0, unspanned_source_ids=unspanned,
                reasons=tuple(reasons),
            )

        quality = self._schema_quality(schema)
        return MatchResult(schema, quality, unspanned_source_ids=unspanned)

    def _free_attributes(self, selection: frozenset[int]):
        seed_attrs = {attr for seed in self.seeds for attr in seed}
        return [
            attr
            for sid in sorted(selection)
            for attr in self.universe.source(sid).attributes
            if attr not in seed_attrs
        ]

    def _schema_quality(self, schema: MediatedSchema) -> float:
        if not len(schema):
            return 0.0
        total = 0.0
        for ga in schema:
            cluster = Cluster.from_ga(ga, self.matrix)
            total += cluster.internal_quality(self.matrix)
        return total / len(schema)


def coalesce_ga_constraints(
    ga_constraints: Sequence[GlobalAttribute],
) -> tuple[GlobalAttribute, ...]:
    """Merge GA constraints that share attributes into disjoint seeds.

    Two constraints sharing an attribute necessarily describe one concept,
    so their union must be a single seed.  If that union is not a valid GA
    (it would take two attributes from one source) the constraints are
    contradictory and a :class:`ConstraintError` is raised.
    """
    groups: list[set] = []
    for ga in ga_constraints:
        attrs = set(ga.attributes)
        touching = [g for g in groups if g & attrs]
        for g in touching:
            attrs |= g
            groups.remove(g)
        groups.append(attrs)
    seeds = []
    for group in groups:
        sources = [a.source_id for a in group]
        if len(set(sources)) != len(sources):
            raise ConstraintError(
                "GA constraints are contradictory: their union would take "
                "two attributes from one source"
            )
        seeds.append(GlobalAttribute(group))
    return tuple(
        sorted(
            seeds,
            key=lambda ga: sorted((a.source_id, a.index) for a in ga),
        )
    )


def _resolve_matrix(
    universe: Universe,
    similarity: SimilarityMeasure | NameSimilarityMatrix | None,
) -> NameSimilarityMatrix:
    if isinstance(similarity, NameSimilarityMatrix):
        return similarity
    measure = similarity if similarity is not None else default_measure()
    return NameSimilarityMatrix.build(universe.attribute_names(), measure)
