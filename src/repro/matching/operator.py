"""The schema matching operator ``Match(S, C, G)`` (paper §3).

``Match`` determines the best matching between the schemas of the sources in
``S``, returning the mediated schema ``M`` and the matching-quality QEF
value ``F1(S)``.  It must honour the user's source constraints ``C`` (the
result must be valid on ``C``) and GA constraints ``G`` (``G ⊑ M``).

:class:`MatchOperator` binds a universe, a similarity matrix and the problem
parameters once, then evaluates arbitrary selections with memoization —
the operator is a pure function of the selection, so caching by source-set
is sound and is what makes iterative search affordable.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..core import (
    GlobalAttribute,
    MediatedSchema,
    Problem,
    Universe,
)
from ..exceptions import ConstraintError
from ..similarity.matrix import NameSimilarityMatrix
from ..similarity.measures import SimilarityMeasure, default_measure
from ..telemetry import get_profiler, get_telemetry
from .cluster import Cluster
from .greedy import greedy_constrained_clustering


@dataclass(frozen=True, slots=True)
class MatchResult:
    """Outcome of one ``Match(S, C, G)`` call.

    Attributes
    ----------
    schema:
        The mediated schema, or None when the constraints are unsatisfiable
        for this selection (the paper's NULL result).
    quality:
        ``F1(S)`` — the mean internal matching quality over the schema's
        GAs (0 for a NULL or empty schema).
    unspanned_source_ids:
        Selected sources that contribute no attribute to any GA.  Only
        constrained sources among these make the result NULL; the rest are
        diagnostic.
    reasons:
        Human-readable explanations when ``schema`` is None.
    """

    schema: MediatedSchema | None
    quality: float
    unspanned_source_ids: frozenset[int] = frozenset()
    reasons: tuple[str, ...] = ()

    @property
    def is_null(self) -> bool:
        """True when Match returned the paper's NULL result."""
        return self.schema is None


class MatchOperator:
    """``Match(S)`` with the constraints and parameters bound at creation."""

    def __init__(
        self,
        universe: Universe,
        source_constraints: Iterable[int] = (),
        ga_constraints: Sequence[GlobalAttribute] = (),
        theta: float = 0.65,
        beta: int = 2,
        similarity: SimilarityMeasure | NameSimilarityMatrix | None = None,
        linkage: str = "single",
        prune: bool = True,
        cache_size: int = 200_000,
    ):
        self.universe = universe
        self.theta = theta
        self.beta = beta
        self.linkage = linkage
        self.prune = prune
        self.matrix = _resolve_matrix(universe, similarity)
        self.seeds = coalesce_ga_constraints(ga_constraints)
        implied = {
            attr.source_id for seed in self.seeds for attr in seed
        }
        self.required_source_ids = frozenset(source_constraints) | frozenset(
            implied
        )
        self._cache: OrderedDict[frozenset[int], MatchResult] = (
            OrderedDict()
        )
        self._cache_size = cache_size
        self.memo_evictions = 0
        #: Plain-int memo traffic counters; kept independent of telemetry so
        #: SearchStats can report them even under the no-op tracer.
        self.memo_hits = 0
        self.memo_misses = 0
        get_telemetry().metrics.gauge("match.constraint_seeds").set(
            len(self.seeds)
        )
        get_profiler().add_cache_probe("match.memo", self.cache_info)

    @classmethod
    def for_problem(
        cls,
        problem: Problem,
        similarity: SimilarityMeasure | NameSimilarityMatrix | None = None,
        linkage: str = "single",
        prune: bool = True,
        **kwargs,
    ) -> "MatchOperator":
        """Build the operator a :class:`~repro.core.Problem` describes."""
        return cls(
            problem.universe,
            source_constraints=problem.source_constraints,
            ga_constraints=problem.ga_constraints,
            theta=problem.theta,
            beta=problem.beta,
            similarity=similarity,
            linkage=linkage,
            prune=prune,
            **kwargs,
        )

    def match(self, source_ids: Iterable[int]) -> MatchResult:
        """Evaluate ``Match(S)`` for the given selection (memoized)."""
        telemetry = get_telemetry()
        selection = frozenset(source_ids)
        cached = self._cache.get(selection)
        if cached is not None:
            self._cache.move_to_end(selection)
            self.memo_hits += 1
            telemetry.metrics.counter("match.memo_hits").inc()
            return cached
        self.memo_misses += 1
        telemetry.metrics.counter("match.memo_misses").inc()
        with get_profiler().phase("matching"), telemetry.span(
            "match.evaluate", size=len(selection)
        ) as span:
            result = self._match_uncached(selection)
            span.set(null=result.is_null)
        while self._cache and len(self._cache) >= self._cache_size:
            # LRU eviction: drop the stalest selection, never the whole
            # memo — a warm solve loop keeps its hot neighborhoods.
            self._cache.popitem(last=False)
            self.memo_evictions += 1
            telemetry.metrics.counter("match.cache_evictions").inc()
        self._cache[selection] = result
        return result

    def ga_quality(self, ga: GlobalAttribute) -> float:
        """``F1({g})`` — internal matching quality of a single GA."""
        cluster = Cluster.from_ga(ga, self.matrix)
        return cluster.internal_quality(self.matrix)

    def cache_info(self) -> dict[str, int]:
        """Cache statistics for diagnostics."""
        return {
            "entries": len(self._cache),
            "capacity": self._cache_size,
            "hits": self.memo_hits,
            "misses": self.memo_misses,
            "evictions": self.memo_evictions,
        }

    # -- internals ----------------------------------------------------------

    def _match_uncached(self, selection: frozenset[int]) -> MatchResult:
        reasons: list[str] = []
        missing = self.required_source_ids - selection
        if missing:
            reasons.append(
                f"selection omits constrained source(s) {sorted(missing)}"
            )
            return MatchResult(None, 0.0, reasons=tuple(reasons))

        free_attrs = self._free_attributes(selection)
        clusters = greedy_constrained_clustering(
            free_attrs,
            self.seeds,
            self.matrix,
            self.theta,
            linkage=self.linkage,
            prune=self.prune,
        )
        gas = [
            cluster.to_ga()
            for cluster in clusters
            if cluster.keep or len(cluster) >= self.beta
        ]
        schema = MediatedSchema(gas)

        unspanned = schema.unspanned_source_ids(selection)
        constrained_unspanned = unspanned & self.required_source_ids
        if constrained_unspanned:
            # M is not valid on C: a constrained source matched nothing.
            reasons.append(
                "no matching satisfies θ for constrained source(s) "
                f"{sorted(constrained_unspanned)}"
            )
            return MatchResult(
                None, 0.0, unspanned_source_ids=unspanned,
                reasons=tuple(reasons),
            )

        quality = self._schema_quality(schema)
        return MatchResult(schema, quality, unspanned_source_ids=unspanned)

    def _free_attributes(self, selection: frozenset[int]):
        seed_attrs = {attr for seed in self.seeds for attr in seed}
        return [
            attr
            for sid in sorted(selection)
            for attr in self.universe.source(sid).attributes
            if attr not in seed_attrs
        ]

    def _schema_quality(self, schema: MediatedSchema) -> float:
        if not len(schema):
            return 0.0
        total = 0.0
        for ga in schema:
            cluster = Cluster.from_ga(ga, self.matrix)
            total += cluster.internal_quality(self.matrix)
        return total / len(schema)


def coalesce_ga_constraints(
    ga_constraints: Sequence[GlobalAttribute],
) -> tuple[GlobalAttribute, ...]:
    """Merge GA constraints that share attributes into disjoint seeds.

    Two constraints sharing an attribute necessarily describe one concept,
    so their union must be a single seed.  If that union is not a valid GA
    (it would take two attributes from one source) the constraints are
    contradictory and a :class:`ConstraintError` is raised.
    """
    groups: list[set] = []
    for ga in ga_constraints:
        attrs = set(ga.attributes)
        touching = [g for g in groups if g & attrs]
        for g in touching:
            attrs |= g
            groups.remove(g)
        groups.append(attrs)
    seeds = []
    for group in groups:
        sources = [a.source_id for a in group]
        if len(set(sources)) != len(sources):
            raise ConstraintError(
                "GA constraints are contradictory: their union would take "
                "two attributes from one source"
            )
        seeds.append(GlobalAttribute(group))
    return tuple(
        sorted(
            seeds,
            key=lambda ga: sorted((a.source_id, a.index) for a in ga),
        )
    )


def _resolve_matrix(
    universe: Universe,
    similarity: SimilarityMeasure | NameSimilarityMatrix | None,
) -> NameSimilarityMatrix:
    if isinstance(similarity, NameSimilarityMatrix):
        return similarity
    measure = similarity if similarity is not None else default_measure()
    return NameSimilarityMatrix.build(universe.attribute_names(), measure)
