"""Incremental matching: warm-starting Match(S ± {u}) from Match(S).

The optimizer's hot loop evaluates ``Match`` on selections that differ from
the current one by a single source.  Cold clustering rebuilds everything
from singletons; the warm start reuses the previous clusters:

* **ADD** — start from the base selection's final clusters plus singletons
  for the new source's attributes, and resume the round loop.  Finished
  clusters may re-activate: the new attributes can be similar to them.
* **DROP** — clusters that lose a member are decomposed back into
  singletons (a single-linkage chain may fall apart when its bridge
  leaves), untouched clusters stay intact, and the round loop resumes —
  which also re-checks cross-cluster merges that the departed source's
  validity constraint used to block.

Under single linkage *without* the validity constraint the result provably
equals cold clustering (threshold components are order-independent).  With
the one-attribute-per-source constraint, merge order matters, so the warm
result can differ from the cold one in rare conflict cases.  The operator
is therefore an explicit opt-in; ``benchmarks/bench_incremental.py``
measures both the agreement rate (≈100 % on the Books workloads) and the
speedup.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

from ..core import AttributeRef
from ..telemetry import get_telemetry
from .cluster import Cluster
from .greedy import greedy_constrained_clustering, run_clustering_rounds
from .operator import MatchOperator, MatchResult


class IncrementalMatchOperator(MatchOperator):
    """A :class:`MatchOperator` that warm-starts from cached clusterings.

    Drop-in compatible: same constructor, same ``match`` contract.  Keeps
    a bounded LRU cache of final cluster states keyed by selection.
    """

    def __init__(self, *args, cluster_cache_size: int = 4_096, **kwargs):
        super().__init__(*args, **kwargs)
        self._clusters: OrderedDict[frozenset[int], list[Cluster]] = (
            OrderedDict()
        )
        self._cluster_cache_size = cluster_cache_size
        self.warm_hits = 0
        self.cold_runs = 0

    def retarget_universe(self, universe, similarity, removed_ids=()):
        """Universe retarget that also prunes the cluster cache.

        Cached clusterings are keyed by selection and read only selected
        sources, so — like the result memo — they survive source adds
        wholesale and lose exactly the entries touching a removed id.
        """
        stats = super().retarget_universe(
            universe, similarity, removed_ids=removed_ids
        )
        removed = frozenset(removed_ids)
        if removed:
            self._clusters = OrderedDict(
                (selection, clusters)
                for selection, clusters in self._clusters.items()
                if not (selection & removed)
            )
        return stats

    # -- internals ----------------------------------------------------------

    def _match_uncached(self, selection: frozenset[int]) -> MatchResult:
        missing = self.required_source_ids - selection
        if missing:
            return MatchResult(
                None,
                0.0,
                reasons=(
                    f"selection omits constrained source(s) {sorted(missing)}",
                ),
            )
        base = self._closest_base(selection)
        if base is None:
            self.cold_runs += 1
            get_telemetry().metrics.counter("match.incremental.cold").inc()
            clusters = greedy_constrained_clustering(
                self._free_attributes(selection),
                self.seeds,
                self.matrix,
                self.theta,
                linkage=self.linkage,
                prune=self.prune,
            )
        else:
            self.warm_hits += 1
            get_telemetry().metrics.counter("match.incremental.warm").inc()
            clusters = self._warm_clustering(selection, base)
        self._remember(selection, clusters)
        return self._result_from_clusters(selection, clusters)

    def _closest_base(self, selection: frozenset[int]) -> frozenset[int] | None:
        """A cached selection one source away (prefer ADD, then DROP)."""
        for source_id in selection:
            base = selection - {source_id}
            if base in self._clusters:
                return base
        universe_ids = self.universe.source_ids
        for source_id in sorted(universe_ids - selection):
            base = selection | {source_id}
            if base in self._clusters:
                return base
        return None

    def _warm_clustering(
        self, selection: frozenset[int], base: frozenset[int]
    ) -> list[Cluster]:
        prior = self._clusters[base]
        self._clusters.move_to_end(base)
        added = selection - base
        removed = base - selection

        initial: list[Cluster] = []
        loose: list[AttributeRef] = []
        for cluster in prior:
            if not (removed and cluster.source_ids & removed):
                # Untouched: pass through intact (including grown seeds
                # and singletons; singletons are harmless as-is).
                initial.append(cluster)
                continue
            # The cluster loses members; a single-linkage chain may fall
            # apart, so decompose the survivors.  Seed cores are
            # indivisible (their sources are required and thus never
            # removed): re-emit each contained seed as a cluster and
            # release only the grown extras.
            survivor_attrs = {
                attr for attr in cluster.attrs
                if attr.source_id not in removed
            }
            if cluster.keep:
                for seed in self.seeds:
                    if set(seed.attributes) <= set(cluster.attrs):
                        initial.append(Cluster.from_ga(seed, self.matrix))
                        survivor_attrs -= set(seed.attributes)
            loose.extend(
                sorted(survivor_attrs, key=lambda a: (a.source_id, a.index))
            )
        seed_attrs = {attr for seed in self.seeds for attr in seed}
        for source_id in sorted(added):
            loose.extend(
                attr
                for attr in self.universe.source(source_id).attributes
                if attr not in seed_attrs
            )
        initial.extend(
            Cluster.singleton(attr, self.matrix) for attr in loose
        )
        return run_clustering_rounds(
            initial,
            self.matrix,
            self.theta,
            linkage=self.linkage,
            prune=self.prune,
        )

    def _remember(
        self, selection: frozenset[int], clusters: list[Cluster]
    ) -> None:
        if len(self._clusters) >= self._cluster_cache_size:
            self._clusters.popitem(last=False)
        self._clusters[selection] = clusters

    def _result_from_clusters(
        self, selection: frozenset[int], clusters: Iterable[Cluster]
    ) -> MatchResult:
        from ..core import MediatedSchema

        gas = [
            cluster.to_ga()
            for cluster in clusters
            if cluster.keep or len(cluster) >= self.beta
        ]
        schema = MediatedSchema(gas)
        unspanned = schema.unspanned_source_ids(selection)
        constrained_unspanned = unspanned & self.required_source_ids
        if constrained_unspanned:
            return MatchResult(
                None,
                0.0,
                unspanned_source_ids=unspanned,
                reasons=(
                    "no matching satisfies θ for constrained source(s) "
                    f"{sorted(constrained_unspanned)}",
                ),
            )
        return MatchResult(
            schema,
            self._schema_quality(schema),
            unspanned_source_ids=unspanned,
        )

    def incremental_info(self) -> dict[str, int]:
        """Warm/cold statistics for diagnostics and benchmarks."""
        return {
            "warm_hits": self.warm_hits,
            "cold_runs": self.cold_runs,
            "cached_clusterings": len(self._clusters),
        }
