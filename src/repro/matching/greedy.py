"""Greedy constrained similarity clustering (Algorithm 1 of the paper).

The algorithm proceeds in rounds.  Each round collects every pair of active
clusters whose similarity reaches the matching threshold θ into a priority
queue and pops pairs in descending similarity.  A popped pair merges if
neither side has merged this round and the union is a valid GA.  If exactly
one side has already merged, the other is kept for the next round (it is a
*merge candidate*).  At the end of a round, clusters that neither merged nor
were merge candidates — and are not user-GA seeds (``keep``) — are
*eliminated*: under single linkage their similarity to every other cluster
is below θ and can never rise, so they are frozen into the output.  The
algorithm stops when a round makes no progress.

One deviation from the published pseudocode, noted in DESIGN.md: when a
popped pair finds *both* sides already merged this round, the pseudocode
does nothing, which can terminate the loop while the two union clusters are
still mergeable.  We schedule another round in that case (``done = False``),
matching the paper's prose ("the algorithm terminates when it cannot find
any more pairs of clusters to merge").
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Sequence

import numpy as np

from ..core import AttributeRef, GlobalAttribute
from ..explain.events import (
    ClusterEliminated,
    MergeDeferred,
    PairMerged,
    SeedPlanted,
    attr_key,
    cluster_members,
    get_event_log,
)
from ..similarity.matrix import NameSimilarityMatrix
from ..telemetry import get_telemetry
from .cluster import Cluster, cluster_similarity


def greedy_constrained_clustering(
    attributes: Sequence[AttributeRef],
    seeds: Sequence[GlobalAttribute],
    matrix: NameSimilarityMatrix,
    theta: float,
    linkage: str = "single",
    prune: bool = True,
) -> list[Cluster]:
    """Cluster attributes into candidate GAs.

    Parameters
    ----------
    attributes:
        The free attributes (not covered by any seed) of the selected
        sources.
    seeds:
        Coalesced user GA constraints; each becomes a ``keep`` cluster that
        is never eliminated and may keep growing (the *bridging effect*).
    matrix:
        Precomputed name-pair similarities covering every attribute name.
    theta:
        The matching threshold θ.
    linkage:
        Cluster-pair similarity rule; the paper uses ``"single"``.
    prune:
        Apply the elimination step.  Disabling it changes running time but
        not the result under single linkage; it exists for ablation.

    Returns
    -------
    list[Cluster]
        All final clusters, including singletons.  Callers filter by the
        minimum GA size β.
    """
    initial: list[Cluster] = [Cluster.from_ga(ga, matrix) for ga in seeds]
    initial.extend(Cluster.singleton(attr, matrix) for attr in attributes)
    return run_clustering_rounds(
        initial, matrix, theta, linkage=linkage, prune=prune
    )


def run_clustering_rounds(
    initial_clusters: Sequence[Cluster],
    matrix: NameSimilarityMatrix,
    theta: float,
    linkage: str = "single",
    prune: bool = True,
) -> list[Cluster]:
    """Algorithm 1's round loop, from an arbitrary starting cluster state.

    The standard (cold) entry point starts from seeds + singletons; the
    incremental operator (:mod:`repro.matching.incremental`) resumes from
    a previous selection's final clusters.
    """
    log = get_event_log()
    explain = log.enabled
    active: dict[int, Cluster] = {}
    ids = itertools.count()
    seed_index = 0
    for cluster in initial_clusters:
        active[next(ids)] = cluster
        if explain and cluster.keep:
            log.emit(
                SeedPlanted(
                    seed_index=seed_index, members=cluster_members(cluster)
                )
            )
            seed_index += 1
    finished: list[Cluster] = []
    rounds = 0
    merges = 0
    eliminated = 0

    while True:
        rounds += 1
        done = True
        heap = _similar_pairs(active, matrix, theta, linkage)
        merged_away: set[int] = set()
        merge_candidates: set[int] = set()
        new_ids: set[int] = set()
        while heap:
            neg_sim, _, id_a, id_b = heapq.heappop(heap)
            a_merged = id_a in merged_away
            b_merged = id_b in merged_away
            if a_merged and b_merged:
                # Both partners merged with other clusters this round; their
                # unions may still be mergeable, so run another round.
                done = False
                continue
            if a_merged or b_merged:
                # The losing side survives to the next round.
                survivor = id_b if a_merged else id_a
                merge_candidates.add(survivor)
                done = False
                if explain:
                    log.emit(
                        MergeDeferred(
                            round=rounds,
                            similarity=-neg_sim,
                            members=cluster_members(active[survivor]),
                        )
                    )
                continue
            cluster_a, cluster_b = active[id_a], active[id_b]
            if not cluster_a.can_merge(cluster_b):
                # Invalid union (two attributes from one source): skip.
                continue
            merged_away.add(id_a)
            merged_away.add(id_b)
            merges += 1
            new_id = next(ids)
            active[new_id] = cluster_a.merged_with(cluster_b)
            new_ids.add(new_id)
            if explain:
                pair_a, pair_b = _best_pair(cluster_a, cluster_b, matrix)
                log.emit(
                    PairMerged(
                        round=rounds,
                        similarity=-neg_sim,
                        left=cluster_members(cluster_a),
                        right=cluster_members(cluster_b),
                        pair_a=pair_a,
                        pair_b=pair_b,
                        seeded=cluster_a.keep or cluster_b.keep,
                    )
                )
        for cluster_id in merged_away:
            del active[cluster_id]
        if prune:
            for cluster_id in list(active):
                if cluster_id in new_ids or cluster_id in merge_candidates:
                    continue
                cluster = active[cluster_id]
                if cluster.keep:
                    continue
                finished.append(cluster)
                del active[cluster_id]
                eliminated += 1
                if explain:
                    log.emit(
                        ClusterEliminated(
                            round=rounds, members=cluster_members(cluster)
                        )
                    )
        if done:
            break

    metrics = get_telemetry().metrics
    metrics.counter("match.clustering.rounds").inc(rounds)
    metrics.counter("match.clustering.merges").inc(merges)
    metrics.counter("match.clustering.pruned").inc(eliminated)

    finished.extend(active.values())
    return finished


def _best_pair(
    cluster_a: Cluster, cluster_b: Cluster, matrix: NameSimilarityMatrix
):
    """The max-similarity attribute pair across two clusters.

    Under single linkage this is the pair whose similarity *is* the
    cluster-pair similarity — the pair that justifies the merge.  Only
    called when the decision-event log is live.
    """
    block = matrix.block(cluster_a.name_ids, cluster_b.name_ids)
    row, col = np.unravel_index(int(np.argmax(block)), block.shape)
    return attr_key(cluster_a.attrs[row]), attr_key(cluster_b.attrs[col])


def _similar_pairs(
    active: dict[int, Cluster],
    matrix: NameSimilarityMatrix,
    theta: float,
    linkage: str,
) -> list[tuple[float, int, int, int]]:
    """Heap of ``(-similarity, tiebreak, id_a, id_b)`` for pairs ≥ θ.

    The tiebreak makes pop order deterministic when similarities are equal.
    Single/complete linkage are vectorized: one dense gather over all
    member attributes followed by two segment reductions yields the whole
    cluster-pair similarity matrix.
    """
    entries: list[tuple[float, int, int, int]] = []
    items = sorted(active.items())
    if len(items) < 2:
        return entries
    if linkage in ("single", "complete"):
        cluster_ids = [cid for cid, _ in items]
        sizes = [len(c.name_ids) for _, c in items]
        name_ids = np.concatenate([c.name_ids for _, c in items])
        offsets = np.zeros(len(items), dtype=np.int64)
        np.cumsum(sizes[:-1], out=offsets[1:])
        block = matrix.block(name_ids, name_ids)
        reduce = np.maximum if linkage == "single" else np.minimum
        rows_reduced = reduce.reduceat(block, offsets, axis=0)
        pair = reduce.reduceat(rows_reduced, offsets, axis=1)
        rows, cols = np.nonzero(np.triu(pair >= theta, k=1))
        for row, col in zip(rows.tolist(), cols.tolist()):
            entries.append(
                (
                    -float(pair[row, col]),
                    len(entries),
                    cluster_ids[row],
                    cluster_ids[col],
                )
            )
    else:
        for (id_a, cluster_a), (id_b, cluster_b) in itertools.combinations(
            items, 2
        ):
            sim = cluster_similarity(cluster_a, cluster_b, matrix, linkage)
            if sim >= theta:
                entries.append((-sim, len(entries), id_a, id_b))
    heapq.heapify(entries)
    return entries
