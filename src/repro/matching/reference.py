"""Reference clustering: naive sequential single-linkage.

A deliberately simple O(rounds × n²) agglomerative clusterer used to
cross-check Algorithm 1 in tests and to ablate its round structure and
elimination step in benchmarks.  It repeatedly merges the globally most
similar *valid* cluster pair with similarity ≥ θ, recomputing similarities
after every merge, until no such pair remains.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core import AttributeRef, GlobalAttribute
from ..similarity.matrix import NameSimilarityMatrix
from .cluster import Cluster, cluster_similarity


def sequential_clustering(
    attributes: Sequence[AttributeRef],
    seeds: Sequence[GlobalAttribute],
    matrix: NameSimilarityMatrix,
    theta: float,
    linkage: str = "single",
) -> list[Cluster]:
    """Best-first agglomerative clustering under the GA validity constraint.

    Same contract as
    :func:`repro.matching.greedy.greedy_constrained_clustering`: returns all
    final clusters including singletons.
    """
    clusters: list[Cluster] = [Cluster.from_ga(ga, matrix) for ga in seeds]
    clusters.extend(Cluster.singleton(attr, matrix) for attr in attributes)

    while True:
        best_sim = -1.0
        best_pair: tuple[int, int] | None = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                if not clusters[i].can_merge(clusters[j]):
                    continue
                sim = cluster_similarity(
                    clusters[i], clusters[j], matrix, linkage
                )
                if sim >= theta and sim > best_sim:
                    best_sim = sim
                    best_pair = (i, j)
        if best_pair is None:
            return clusters
        i, j = best_pair
        merged = clusters[i].merged_with(clusters[j])
        clusters = [
            c for k, c in enumerate(clusters) if k not in (i, j)
        ]
        clusters.append(merged)
