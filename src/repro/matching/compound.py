"""Compound schema elements: n:m matching via 1:1 on compounds (paper §2.1).

The paper's formulation is 1:1, but it notes that it "may be extended to
accommodate compound schema elements by replacing the attributes in our
definitions with compound elements (e.g., elements consisting of sets of
attributes).  This would enable us to handle matching with n:m cardinality
by mapping n:m matches to 1:1 matches on compound elements."

This module implements exactly that reduction:

1. the user (or the :func:`suggest_compounds` heuristic) declares
   *compounds* — sets of attributes within one source that jointly express
   a single concept, e.g. ``{after date, before date}`` as a date range;
2. :func:`apply_compounds` derives a universe in which each compound is a
   single attribute, so the ordinary clustering machinery applies
   unchanged;
3. :meth:`CompoundMapping.expand` translates the resulting mediated schema
   back to the original attributes, where a GA becomes an *n:m match*:
   one attribute group per member source.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..core import AttributeRef, GlobalAttribute, MediatedSchema, Source, Universe
from ..exceptions import ConstraintError
from ..similarity.ngram import normalize_name


@dataclass(frozen=True, slots=True)
class CompoundSpec:
    """A declared compound: ≥2 attributes of one source acting as one.

    Attributes
    ----------
    source_id:
        The owning source.
    indexes:
        Schema positions of the member attributes (at least two).
    label:
        Display/matching name for the compound.  When omitted, the common
        final word of the member names is used if they share one
        ("after date" + "before date" → "date"), else the names joined.
    """

    source_id: int
    indexes: tuple[int, ...]
    label: str | None = None

    def __post_init__(self) -> None:
        if len(set(self.indexes)) < 2:
            raise ConstraintError(
                "a compound needs at least two distinct attributes"
            )


@dataclass(frozen=True, slots=True)
class NMMatch:
    """An n:m match: per-source attribute groups expressing one concept."""

    groups: tuple[tuple[AttributeRef, ...], ...]

    @property
    def cardinality(self) -> str:
        """The match arity, e.g. ``"2:1:1"`` (sorted descending)."""
        return ":".join(
            str(size) for size in sorted(
                (len(group) for group in self.groups), reverse=True
            )
        )

    def attributes(self) -> frozenset[AttributeRef]:
        """All original attributes taking part in the match."""
        return frozenset(a for group in self.groups for a in group)

    def is_one_to_one(self) -> bool:
        """True iff every group is a single attribute."""
        return all(len(group) == 1 for group in self.groups)


class CompoundMapping:
    """A derived universe plus the translation back to the original."""

    def __init__(
        self,
        original: Universe,
        derived: Universe,
        expansion: dict[AttributeRef, tuple[AttributeRef, ...]],
    ):
        self.original = original
        self.derived = derived
        self._expansion = expansion

    def expand_attribute(
        self, attribute: AttributeRef
    ) -> tuple[AttributeRef, ...]:
        """The original attribute(s) behind a derived attribute."""
        return self._expansion[attribute]

    def expand_ga(self, ga: GlobalAttribute) -> NMMatch:
        """Translate one derived GA into an n:m match."""
        groups = tuple(
            self.expand_attribute(attribute)
            for attribute in sorted(
                ga, key=lambda a: (a.source_id, a.index)
            )
        )
        return NMMatch(groups)

    def expand(self, schema: MediatedSchema) -> tuple[NMMatch, ...]:
        """Translate a whole derived mediated schema."""
        return tuple(
            self.expand_ga(ga)
            for ga in sorted(
                schema,
                key=lambda ga: sorted(
                    (a.source_id, a.index) for a in ga
                ),
            )
        )


def compound_label(members: Sequence[AttributeRef]) -> str:
    """Default label: the members' common final word, else joined names."""
    final_words = {
        normalize_name(member.name).split()[-1]
        for member in members
        if normalize_name(member.name)
    }
    if len(final_words) == 1:
        return next(iter(final_words))
    return " ".join(
        member.name for member in
        sorted(members, key=lambda a: a.index)
    )


def apply_compounds(
    universe: Universe, specs: Iterable[CompoundSpec]
) -> CompoundMapping:
    """Derive the universe in which each compound is a single attribute.

    Source ids, data, sketches and characteristics are preserved; only the
    schemas change.  Compounds of one source must not overlap.

    Raises
    ------
    ConstraintError
        On unknown sources/indexes or overlapping compounds.
    """
    by_source: dict[int, list[CompoundSpec]] = defaultdict(list)
    for spec in specs:
        if spec.source_id not in universe:
            raise ConstraintError(
                f"compound references unknown source {spec.source_id}"
            )
        source = universe.source(spec.source_id)
        for index in spec.indexes:
            if not 0 <= index < len(source.schema):
                raise ConstraintError(
                    f"compound index {index} out of range for source "
                    f"{source.name!r}"
                )
        by_source[spec.source_id].append(spec)
    for source_id, source_specs in by_source.items():
        claimed: set[int] = set()
        for spec in source_specs:
            overlap = claimed & set(spec.indexes)
            if overlap:
                raise ConstraintError(
                    f"compounds of source {source_id} overlap on "
                    f"attribute index(es) {sorted(overlap)}"
                )
            claimed |= set(spec.indexes)

    derived_sources: list[Source] = []
    expansion: dict[AttributeRef, tuple[AttributeRef, ...]] = {}
    for source in universe:
        source_specs = by_source.get(source.source_id, [])
        compound_of: dict[int, CompoundSpec] = {}
        for spec in source_specs:
            for index in spec.indexes:
                compound_of[index] = spec
        new_names: list[str] = []
        new_groups: list[tuple[AttributeRef, ...]] = []
        emitted: set[int] = set()
        for index, attribute in enumerate(source.attributes):
            spec = compound_of.get(index)
            if spec is None:
                new_names.append(attribute.name)
                new_groups.append((attribute,))
            elif id(spec) not in emitted:
                emitted.add(id(spec))
                members = tuple(
                    source.attributes[i] for i in sorted(set(spec.indexes))
                )
                new_names.append(spec.label or compound_label(members))
                new_groups.append(members)
        derived = Source(
            source.source_id,
            name=source.name,
            schema=new_names,
            cardinality=source.cardinality,
            characteristics=source.characteristics,
            tuple_ids=source.tuple_ids,
            sketch=source.sketch,
        )
        derived_sources.append(derived)
        for derived_attr, group in zip(derived.attributes, new_groups):
            expansion[derived_attr] = group

    return CompoundMapping(universe, Universe(derived_sources), expansion)


def suggest_compounds(
    universe: Universe,
    min_members: int = 2,
    head_words: Iterable[str] | None = None,
) -> tuple[CompoundSpec, ...]:
    """Heuristic compound detection by shared final word.

    Attributes of one source whose names end in the same word express
    facets of one concept on real query interfaces: "after date" /
    "before date" (a range), "first name" / "last name" (a person).
    ``head_words`` optionally restricts which final words may anchor a
    compound.
    """
    allowed = (
        {normalize_name(word) for word in head_words}
        if head_words is not None
        else None
    )
    suggestions: list[CompoundSpec] = []
    for source in universe:
        groups: dict[str, list[int]] = defaultdict(list)
        for index, name in enumerate(source.schema):
            words = normalize_name(name).split()
            if len(words) < 2:
                continue  # single words are whole concepts by themselves
            head = words[-1]
            if allowed is not None and head not in allowed:
                continue
            groups[head].append(index)
        for head, indexes in sorted(groups.items()):
            if len(indexes) >= min_members:
                suggestions.append(
                    CompoundSpec(
                        source.source_id, tuple(indexes), label=head
                    )
                )
    return tuple(suggestions)
