"""Empirical complexity probes: measure phase cost growth across scales.

``mube profile --scale N1,N2,...`` runs the full solve pipeline at
increasing universe sizes under an enabled :class:`PhaseProfiler`, fits
a log-log slope per phase (the empirical exponent: 1.0 reads "linear in
universe size", 2.0 "quadratic"), and emits a ``PROFILE_*.json``
document that ``benchmarks/track.py`` ingests into the same
rolling-median history and regression gate as the ``BENCH_*.json``
reports — so a phase whose exponent creeps up fails CI, not a code
review six months later.

The document's ``metrics`` map is the flat, gate-ready view: one float
per key (``<phase>.slope`` and ``<phase>.wall_seconds`` at the largest
scale).  Everything else is context for humans reading the artifact.
"""

from __future__ import annotations

import io
import math
from dataclasses import dataclass, field
from typing import Any

from .exporters import InMemoryExporter
from .profiler import PhaseProfiler, phase_profile, use_profiler
from .runtime import use_telemetry
from .tracer import Telemetry

#: Schema marker for PROFILE_*.json documents.
PROFILE_KIND = "mube-profile"

#: Current document schema version.
PROFILE_VERSION = 1


@dataclass
class ProfileConfig:
    """One complexity-probe run's knobs."""

    scales: tuple[int, ...] = (40, 80, 160)
    choose: int = 8
    iterations: int = 30
    optimizer: str = "tabu"
    seed: int = 0
    theta: float = 0.65
    jobs: int | None = None
    memory: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "scales": list(self.scales),
            "choose": self.choose,
            "iterations": self.iterations,
            "optimizer": self.optimizer,
            "seed": self.seed,
            "theta": self.theta,
            "jobs": self.jobs,
            "memory": self.memory,
        }


@dataclass
class LogLogFit:
    """Least-squares fit of ``log(seconds)`` against ``log(scale)``."""

    slope: float
    intercept: float
    r_squared: float
    points: int = 0

    def to_dict(self) -> dict[str, float]:
        return {
            "slope": round(self.slope, 4),
            "intercept": round(self.intercept, 4),
            "r_squared": round(self.r_squared, 4),
            "points": self.points,
        }


@dataclass
class ScaleRun:
    """Measured costs of one pipeline run at one universe size."""

    scale: int
    phases: dict[str, dict[str, float | None]]
    caches: dict[str, dict[str, Any]] = field(default_factory=dict)


def fit_loglog(
    xs: list[float], ys: list[float]
) -> LogLogFit | None:
    """Fit ``log y = slope * log x + intercept`` (None under 2 points).

    Non-positive observations cannot be logged; they are floored to a
    nanosecond, which keeps near-zero phases (a cache-hit-only phase at
    small scale, say) from dropping out of the fit entirely.
    """
    pairs = [
        (math.log(x), math.log(max(y, 1e-9)))
        for x, y in zip(xs, ys)
        if x > 0
    ]
    if len(pairs) < 2 or len({p[0] for p in pairs}) < 2:
        return None
    n = len(pairs)
    mean_x = sum(p[0] for p in pairs) / n
    mean_y = sum(p[1] for p in pairs) / n
    var_x = sum((p[0] - mean_x) ** 2 for p in pairs)
    cov = sum((p[0] - mean_x) * (p[1] - mean_y) for p in pairs)
    slope = cov / var_x
    intercept = mean_y - slope * mean_x
    ss_tot = sum((p[1] - mean_y) ** 2 for p in pairs)
    ss_res = sum(
        (p[1] - (slope * p[0] + intercept)) ** 2 for p in pairs
    )
    r_squared = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    return LogLogFit(slope, intercept, r_squared, points=n)


def measure_scale(config: ProfileConfig, scale: int) -> ScaleRun:
    """Run the pipeline once at one universe size, fully profiled."""
    from ..core import CharacteristicSpec, default_weights
    from ..search import OptimizerConfig
    from ..session import Session
    from ..workload import generate_books_universe

    workload = generate_books_universe(
        n_sources=scale, seed=config.seed
    )
    spec = CharacteristicSpec("mttf", "mttf")
    telemetry = Telemetry(exporters=[InMemoryExporter()])
    profiler = PhaseProfiler(memory=config.memory)
    with use_telemetry(telemetry), use_profiler(profiler), profiler:
        session = Session(
            workload.universe,
            max_sources=min(config.choose, scale),
            theta=config.theta,
            weights=default_weights([spec]),
            characteristic_qefs=[spec],
            optimizer=config.optimizer,
            optimizer_config=OptimizerConfig(
                max_iterations=config.iterations, seed=config.seed
            ),
            record_runs=False,
        )
        session.solve(jobs=config.jobs)
        analytics = profiler.cache_analytics()
    telemetry.close()
    snapshot = telemetry.metrics.snapshot()
    return ScaleRun(
        scale=scale, phases=phase_profile(snapshot), caches=analytics
    )


def run_profile(config: ProfileConfig) -> dict[str, Any]:
    """Probe every configured scale and assemble the PROFILE document."""
    runs = [measure_scale(config, scale) for scale in config.scales]
    phase_names = sorted({name for run in runs for name in run.phases})
    phases: dict[str, Any] = {}
    metrics: dict[str, float] = {}
    for name in phase_names:
        wall_by_scale: dict[str, float] = {}
        cpu_by_scale: dict[str, float] = {}
        calls_by_scale: dict[str, float] = {}
        xs: list[float] = []
        ys: list[float] = []
        for run in runs:
            row = run.phases.get(name)
            if row is None:
                continue
            wall_by_scale[str(run.scale)] = round(row["wall_seconds"], 6)
            cpu_by_scale[str(run.scale)] = round(row["cpu_seconds"], 6)
            calls_by_scale[str(run.scale)] = row["calls"]
            xs.append(float(run.scale))
            ys.append(row["wall_seconds"])
        fit = fit_loglog(xs, ys)
        entry: dict[str, Any] = {
            "wall_seconds": wall_by_scale,
            "cpu_seconds": cpu_by_scale,
            "calls": calls_by_scale,
            "fit": fit.to_dict() if fit else None,
        }
        phases[name] = entry
        if fit is not None:
            metrics[f"{name}.slope"] = round(fit.slope, 4)
        if ys:
            metrics[f"{name}.wall_seconds"] = round(ys[-1], 6)
    return {
        "kind": PROFILE_KIND,
        "version": PROFILE_VERSION,
        "config": config.to_dict(),
        "scales": list(config.scales),
        "phases": phases,
        "caches": runs[-1].caches if runs else {},
        "metrics": metrics,
    }


def render_profile_report(document: dict[str, Any]) -> str:
    """The ``mube profile`` table: seconds per scale, slope, fit quality."""
    out = io.StringIO()
    scales = [str(s) for s in document.get("scales", [])]
    phases = document.get("phases", {})
    if not phases:
        return "(no phases profiled)\n"
    width = max(len(name) for name in phases)
    width = max(width, len("phase"))
    header = f"{'phase':<{width}}"
    for scale in scales:
        header += f" {scale + 's':>10}"
    header += f" {'slope':>7} {'r²':>6}"
    out.write(header + "\n")
    def largest_wall(name: str) -> float:
        walls = phases[name].get("wall_seconds", {})
        return walls.get(scales[-1], 0.0) if scales else 0.0
    for name in sorted(phases, key=lambda n: -largest_wall(n)):
        entry = phases[name]
        line = f"{name:<{width}}"
        for scale in scales:
            wall = entry.get("wall_seconds", {}).get(scale)
            line += f" {wall:>10.4f}" if wall is not None else f" {'—':>10}"
        fit = entry.get("fit")
        if fit:
            line += f" {fit['slope']:>7.2f} {fit['r_squared']:>6.2f}"
        else:
            line += f" {'—':>7} {'—':>6}"
        out.write(line + "\n")
    caches = document.get("caches", {})
    if caches:
        out.write("\ncache analytics at the largest scale:\n")
        for name in sorted(caches):
            final = caches[name].get("final", {})
            series = caches[name].get("series", [])
            out.write(
                f"  {name:<20} hit rate {final.get('hit_rate', 0.0):.1%} "
                f"({final.get('hits', 0)}h/{final.get('misses', 0)}m, "
                f"{len(series)} samples)\n"
            )
    return out.getvalue()
