"""Chrome Trace Event Format export for recorded span trees.

Converts a parsed :class:`~repro.telemetry.trace_report.Trace` (or raw
:class:`~repro.telemetry.tracer.SpanRecord` sequences) into the JSON
format chrome://tracing and https://ui.perfetto.dev render natively —
``mube trace-report FILE --chrome out.json`` is the CLI surface.

Every span becomes one ``"X"`` (complete) event with microsecond
``ts``/``dur``.  Chrome stacks events on a *thread lane* (``tid``) by
containment, which matches nested spans — but absorbed portfolio worker
spans are siblings that genuinely overlap in time (they ran in separate
processes), and overlapping siblings on one lane render as garbage.  The
exporter therefore assigns lanes greedily and deterministically: a child
stays on its parent's lane when the lane is free at its start time,
otherwise it takes the first free lane, otherwise a new one — so a
``jobs=4`` solve renders as four parallel worker lanes under the
``portfolio.solve`` row, on the portfolio's own timeline (absorb already
re-anchored the timestamps).
"""

from __future__ import annotations

import json
from typing import Any, Sequence

from .trace_report import Trace, TraceSpan, load_trace


def trace_to_chrome(
    trace: Trace, process_name: str = "mube"
) -> dict[str, Any]:
    """The trace as a Chrome Trace Event Format document (JSON-safe)."""
    lanes = _assign_lanes(trace.roots)
    events: list[dict[str, Any]] = []
    for span in trace.spans:
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": round(max(span.start, 0.0) * 1e6, 3),
                "dur": round(max(span.duration, 0.0) * 1e6, 3),
                "pid": 0,
                "tid": lanes.get(span.index, 0),
                "args": dict(span.attributes),
            }
        )
    events.sort(key=lambda e: (e["ts"], -e["dur"], e["tid"]))
    metadata: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for tid in sorted(set(lanes.values()) | {0}):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": "main" if tid == 0 else f"lane {tid}"},
            }
        )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
    }


def spans_to_chrome(
    spans: Sequence[Any], process_name: str = "mube"
) -> dict[str, Any]:
    """Chrome document straight from finished span records.

    Accepts :class:`~repro.telemetry.tracer.SpanRecord` objects (e.g.
    from an :class:`~repro.telemetry.InMemoryExporter`) as well as
    already-parsed :class:`TraceSpan` instances.
    """
    parsed: list[TraceSpan] = []
    for span in spans:
        if isinstance(span, TraceSpan):
            parsed.append(
                TraceSpan(
                    name=span.name,
                    index=span.index,
                    parent=span.parent,
                    depth=span.depth,
                    start=span.start,
                    duration=span.duration,
                    attributes=dict(span.attributes),
                )
            )
        else:
            parsed.append(
                TraceSpan(
                    name=span.name,
                    index=span.index,
                    parent=span.parent_index,
                    depth=span.depth,
                    start=span.start,
                    duration=span.duration,
                    attributes=dict(span.attributes),
                )
            )
    by_index = {span.index: span for span in parsed}
    for span in parsed:
        parent = by_index.get(span.parent) if span.parent is not None else None
        if parent is not None:
            parent.children.append(span)
    for span in parsed:
        span.children.sort(key=lambda s: s.start)
    trace = Trace(spans=parsed, events=[], metrics={})
    return trace_to_chrome(trace, process_name=process_name)


def write_chrome_trace(
    trace_path: str, out_path: str, process_name: str = "mube"
) -> int:
    """Convert a ``--trace`` JSON-lines file; returns the event count."""
    document = trace_to_chrome(
        load_trace(trace_path), process_name=process_name
    )
    with open(out_path, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=1, sort_keys=True)
        stream.write("\n")
    return len(document["traceEvents"])


def _assign_lanes(roots: list[TraceSpan]) -> dict[int, int]:
    """Span index → lane id, overlap-free within every sibling group.

    Deterministic: siblings are visited in ``(start, index)`` order and
    lanes are probed in creation order, so the same trace always renders
    the same way.
    """
    lanes: dict[int, int] = {}
    next_lane = [1]

    def place(children: list[TraceSpan], parent_lane: int) -> None:
        # Per sibling group: the parent's lane plus any lanes this group
        # opens; each holds the end time of the last sibling placed on it.
        group_lanes: list[list[float | int]] = [[parent_lane, -1.0]]
        for child in sorted(children, key=lambda s: (s.start, s.index)):
            slot = None
            for lane in group_lanes:
                if child.start >= lane[1] - 1e-12:
                    slot = lane
                    break
            if slot is None:
                slot = [next_lane[0], -1.0]
                next_lane[0] += 1
                group_lanes.append(slot)
            slot[1] = child.start + child.duration
            lanes[child.index] = int(slot[0])
            place(child.children, int(slot[0]))

    for root in sorted(roots, key=lambda s: (s.start, s.index)):
        lanes[root.index] = 0
        place(root.children, 0)
    return lanes
