"""Cost attribution for the solve pipeline: the :class:`PhaseProfiler`.

Spans answer "what happened when"; the profiler answers "what did each
pipeline *phase* cost" — wall time, CPU time and (when enabled) peak and
delta heap memory, per phase, aggregated across portfolio workers.  The
natural phases (universe compile, similarity matrix, matching, sketch
stacking, search, merge) are wrapped at their definition sites with::

    with get_profiler().phase("matching"):
        ...

The default profiler is :data:`NOOP_PROFILER`: ``phase()`` returns a
shared do-nothing context manager, so instrumentation left in place
costs one module-global read plus two trivial calls — the same
zero-default-overhead contract the tracer holds.

An enabled profiler records each phase close into the *active
telemetry's* histograms under ``profile.phase.<name>.<metric>``.  Riding
the metrics registry is what makes ``jobs=K`` work: worker processes
record into their own registries, which already travel home through the
parallel engine's ``merge_snapshot`` path, so phase costs aggregate
across processes exactly like counters do.  The profiler therefore
*requires an enabled tracer* to retain data — ``mube profile`` and
:mod:`repro.telemetry.complexity` install one; under the no-op tracer an
enabled profiler measures and discards.

Memory attribution uses :mod:`tracemalloc` (enabled with
``PhaseProfiler(memory=True)``): each phase's ``mem_peak_bytes`` is the
true high-water mark *during that phase* (a peak-stack propagates child
peaks to parents around ``reset_peak`` calls), and ``mem_delta_bytes``
is the retained-bytes difference across the phase.

Cache analytics ride along: objects with memo tables
(:class:`~repro.quality.overall.Objective`,
:class:`~repro.matching.operator.MatchOperator`,
:class:`~repro.similarity.cache.CachedSimilarity`) register a probe when
they are built under an enabled profiler; the profiler samples every
probe at phase closes (throttled, bounded) into a hit-ratio-over-time
series, and flushes the final hit/miss/eviction totals into
``profile.cache.*`` counters on :meth:`PhaseProfiler.close` so they,
too, merge across workers.
"""

from __future__ import annotations

import io
import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Callable

from .runtime import get_telemetry

#: Histogram-name prefix for per-phase cost metrics.
PHASE_METRIC_PREFIX = "profile.phase."

#: Counter-name prefix for flushed cache totals.
CACHE_METRIC_PREFIX = "profile.cache."

#: The per-phase metrics an enabled profiler records (memory ones only
#: with ``memory=True``).
PHASE_METRICS = (
    "wall_seconds", "cpu_seconds", "mem_peak_bytes", "mem_delta_bytes",
)


class _PhaseSpan:
    """An open phase; record on close into the active telemetry."""

    __slots__ = ("_profiler", "name", "_wall0", "_cpu0", "_mem0")

    def __init__(self, profiler: "PhaseProfiler", name: str):
        self._profiler = profiler
        self.name = name
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._mem0 = 0

    def __enter__(self) -> "_PhaseSpan":
        profiler = self._profiler
        if profiler.memory and tracemalloc.is_tracing():
            self._mem0 = profiler._push_mem_frame()
        self._cpu0 = time.process_time()
        self._wall0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        profiler = self._profiler
        metrics = get_telemetry().metrics
        base = PHASE_METRIC_PREFIX + self.name
        metrics.histogram(base + ".wall_seconds").observe(wall)
        metrics.histogram(base + ".cpu_seconds").observe(cpu)
        if profiler.memory and tracemalloc.is_tracing():
            delta, peak = profiler._pop_mem_frame(self._mem0)
            metrics.histogram(base + ".mem_peak_bytes").observe(peak)
            metrics.histogram(base + ".mem_delta_bytes").observe(delta)
        profiler.sample_caches()


class _NoopPhaseSpan:
    """Shared do-nothing phase for the disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NoopPhaseSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_PHASE = _NoopPhaseSpan()


class PhaseProfiler:
    """Cost attribution for one profiled run.

    Parameters
    ----------
    memory:
        Also attribute heap memory per phase via :mod:`tracemalloc`
        (:meth:`start` begins tracing if nothing else has).  Tracing
        slows allocation-heavy code noticeably, so it is opt-in.
    cache_sample_interval:
        Minimum seconds between cache-probe samples; phase closes inside
        the window are skipped.  Doubles whenever the series is thinned.
    max_cache_samples:
        Bound on the hit-ratio series; on overflow every second sample
        is dropped (and the interval doubles), so long runs keep an
        evenly spread history instead of a truncated head.
    """

    enabled = True

    def __init__(
        self,
        memory: bool = False,
        cache_sample_interval: float = 0.05,
        max_cache_samples: int = 512,
    ):
        self.memory = memory
        self.cache_sample_interval = cache_sample_interval
        self.max_cache_samples = max(2, max_cache_samples)
        self._epoch = time.perf_counter()
        self._probes: dict[str, Callable[[], dict]] = {}
        self._cache_series: list[dict[str, Any]] = []
        self._last_sample = -float("inf")
        self._peak_stack: list[int] = []
        self._started_tracing = False
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Begin a profiled scope (starts tracemalloc when asked to)."""
        if self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracing = True
        self._epoch = time.perf_counter()

    def close(self) -> None:
        """Flush cache totals to the active telemetry and stop tracing.

        Safe to call twice; only the first close flushes.  The final
        per-probe hit/miss/eviction totals land in ``profile.cache.*``
        counters (suffixes like ``#2`` from duplicate registrations are
        folded together), which is the form that crosses process
        boundaries through ``merge_snapshot``.
        """
        if self._closed:
            return
        self._closed = True
        self.sample_caches(force=True)
        metrics = get_telemetry().metrics
        for name, probe in self._probes.items():
            base = name.split("#", 1)[0]
            try:
                stats = probe()
            except Exception:  # noqa: BLE001 - a dead probe can't fail a run
                continue
            for field in ("hits", "misses", "evictions"):
                if field in stats:
                    metrics.counter(
                        f"{CACHE_METRIC_PREFIX}{base}.{field}"
                    ).inc(int(stats[field]))
        if self._started_tracing and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracing = False

    def __enter__(self) -> "PhaseProfiler":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- phases --------------------------------------------------------------

    def phase(self, name: str) -> _PhaseSpan:
        """A context manager attributing its body's cost to ``name``."""
        return _PhaseSpan(self, name)

    def _push_mem_frame(self) -> int:
        """Open a memory frame: reset the peak, remember retained bytes."""
        current, _ = tracemalloc.get_traced_memory()
        tracemalloc.reset_peak()
        self._peak_stack.append(0)
        return current

    def _pop_mem_frame(self, start_current: int) -> tuple[int, int]:
        """Close a memory frame → (delta bytes, true frame peak bytes).

        ``tracemalloc`` keeps one global peak, which nested frames reset;
        each frame therefore carries the running maximum of the raw peaks
        observed while it was open, and propagates its own maximum to the
        parent frame on close — so a parent's peak is never understated
        by a child's reset.
        """
        current, peak = tracemalloc.get_traced_memory()
        frame_peak = max(peak, self._peak_stack.pop())
        if self._peak_stack:
            self._peak_stack[-1] = max(self._peak_stack[-1], frame_peak)
        tracemalloc.reset_peak()
        return current - start_current, frame_peak

    # -- cache analytics -----------------------------------------------------

    def add_cache_probe(
        self, name: str, probe: Callable[[], dict]
    ) -> None:
        """Register a stats callable (→ dict with ``hits``/``misses``).

        Registering the same name again (one objective per portfolio
        worker, say) gets a ``#2``-style suffix, so every instance keeps
        its own series; :meth:`close` folds suffixed probes back into
        one counter family.
        """
        key, serial = name, 2
        while key in self._probes:
            key = f"{name}#{serial}"
            serial += 1
        self._probes[key] = probe

    def sample_caches(self, force: bool = False) -> None:
        """Sample every probe into the hit-ratio series (throttled)."""
        if not self._probes:
            return
        now = time.perf_counter()
        if not force and now - self._last_sample < self.cache_sample_interval:
            return
        self._last_sample = now
        caches: dict[str, dict] = {}
        for name, probe in self._probes.items():
            try:
                caches[name] = dict(probe())
            except Exception:  # noqa: BLE001 - observation must never raise
                continue
        self._cache_series.append(
            {"t": now - self._epoch, "caches": caches}
        )
        if len(self._cache_series) > self.max_cache_samples:
            self._cache_series = self._cache_series[::2]
            self.cache_sample_interval *= 2.0

    def cache_analytics(self) -> dict[str, dict[str, Any]]:
        """Per-probe final stats plus the hit-ratio-over-time series."""
        analytics: dict[str, dict[str, Any]] = {}
        for name, probe in self._probes.items():
            try:
                final = dict(probe())
            except Exception:  # noqa: BLE001
                continue
            series = [
                {
                    "t": round(sample["t"], 6),
                    "hit_rate": _hit_rate(sample["caches"][name]),
                }
                for sample in self._cache_series
                if name in sample["caches"]
            ]
            final["hit_rate"] = _hit_rate(final)
            analytics[name] = {"final": final, "series": series}
        return analytics

    def __repr__(self) -> str:
        return (
            f"PhaseProfiler(memory={self.memory}, "
            f"probes={len(self._probes)})"
        )


class NoopPhaseProfiler:
    """The default profiler: every operation is a constant-time no-op."""

    enabled = False
    memory = False

    __slots__ = ()

    def start(self) -> None:
        pass

    def close(self) -> None:
        pass

    def phase(self, name: str) -> _NoopPhaseSpan:
        return _NOOP_PHASE

    def add_cache_probe(self, name: str, probe) -> None:
        pass

    def sample_caches(self, force: bool = False) -> None:
        pass

    def cache_analytics(self) -> dict:
        return {}

    def __enter__(self) -> "NoopPhaseProfiler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __repr__(self) -> str:
        return "NoopPhaseProfiler()"


#: Shared no-op instance installed as the process default.
NOOP_PROFILER = NoopPhaseProfiler()

_current: PhaseProfiler | NoopPhaseProfiler = NOOP_PROFILER


def get_profiler() -> PhaseProfiler | NoopPhaseProfiler:
    """The active profiler (the shared no-op unless one is installed)."""
    return _current


def set_profiler(
    profiler: PhaseProfiler | NoopPhaseProfiler | None,
) -> None:
    """Install a profiler process-wide (None restores the no-op)."""
    global _current
    _current = profiler if profiler is not None else NOOP_PROFILER


@contextmanager
def use_profiler(profiler: PhaseProfiler | NoopPhaseProfiler):
    """Install a profiler for the duration of a ``with`` block."""
    global _current
    previous = _current
    _current = profiler
    try:
        yield profiler
    finally:
        _current = previous


def _hit_rate(stats: dict) -> float:
    """Hits over total lookups (0.0 before any traffic)."""
    hits = float(stats.get("hits", 0))
    total = hits + float(stats.get("misses", 0))
    return hits / total if total else 0.0


# -- reading profiles back ----------------------------------------------------


def phase_profile(
    snapshot: dict[str, Any],
) -> dict[str, dict[str, float | None]]:
    """Per-phase cost aggregates parsed from a metrics snapshot.

    The snapshot may come straight from a live registry or from a
    ``--trace`` file's final metrics record; worker-merged registries
    yield cross-process totals.  Phases with no memory attribution
    report ``None`` for the memory fields.
    """
    phases: dict[str, dict[str, float | None]] = {}
    for name, summary in snapshot.get("histograms", {}).items():
        if not name.startswith(PHASE_METRIC_PREFIX):
            continue
        stem = name[len(PHASE_METRIC_PREFIX):]
        phase, _, metric = stem.rpartition(".")
        if metric not in PHASE_METRICS or not phase:
            continue
        row = phases.setdefault(
            phase,
            {
                "calls": 0.0,
                "wall_seconds": 0.0,
                "cpu_seconds": 0.0,
                "wall_mean_seconds": 0.0,
                "wall_p99_seconds": 0.0,
                "mem_peak_bytes": None,
                "mem_delta_bytes": None,
            },
        )
        if metric == "wall_seconds":
            row["calls"] = float(summary.get("count", 0))
            row["wall_seconds"] = float(summary.get("total", 0.0))
            row["wall_mean_seconds"] = float(summary.get("mean", 0.0))
            row["wall_p99_seconds"] = float(summary.get("p99", 0.0))
        elif metric == "cpu_seconds":
            row["cpu_seconds"] = float(summary.get("total", 0.0))
        elif metric == "mem_peak_bytes":
            row["mem_peak_bytes"] = float(summary.get("max", 0.0))
        elif metric == "mem_delta_bytes":
            row["mem_delta_bytes"] = float(summary.get("total", 0.0))
    return phases


def cache_totals(snapshot: dict[str, Any]) -> dict[str, dict[str, int]]:
    """Per-cache flushed totals (``profile.cache.*`` counters)."""
    totals: dict[str, dict[str, int]] = {}
    for name, value in snapshot.get("counters", {}).items():
        if not name.startswith(CACHE_METRIC_PREFIX):
            continue
        stem = name[len(CACHE_METRIC_PREFIX):]
        cache, _, field = stem.rpartition(".")
        if not cache:
            continue
        totals.setdefault(cache, {})[field] = int(value)
    return totals


def render_phase_report(
    snapshot: dict[str, Any],
    analytics: dict[str, dict[str, Any]] | None = None,
) -> str:
    """The human-readable phase table (plus cache analytics when given)."""
    phases = phase_profile(snapshot)
    out = io.StringIO()
    if not phases:
        out.write("(no phase profiles recorded)\n")
    else:
        width = max(len(name) for name in phases)
        width = max(width, len("phase"))
        has_memory = any(
            row["mem_peak_bytes"] is not None for row in phases.values()
        )
        header = (
            f"{'phase':<{width}} {'calls':>7} {'wall s':>9} {'cpu s':>9} "
            f"{'mean ms':>9}"
        )
        if has_memory:
            header += f" {'peak MB':>9} {'delta MB':>9}"
        out.write(header + "\n")
        for name in sorted(
            phases, key=lambda n: -phases[n]["wall_seconds"]
        ):
            row = phases[name]
            line = (
                f"{name:<{width}} {row['calls']:>7.0f} "
                f"{row['wall_seconds']:>9.3f} {row['cpu_seconds']:>9.3f} "
                f"{row['wall_mean_seconds'] * 1e3:>9.3f}"
            )
            if has_memory:
                peak = row["mem_peak_bytes"]
                delta = row["mem_delta_bytes"]
                line += (
                    f" {_mb(peak):>9} {_mb(delta):>9}"
                )
            out.write(line + "\n")
    caches = cache_totals(snapshot)
    if caches:
        out.write("\ncache totals (merged across workers):\n")
        for name in sorted(caches):
            stats = caches[name]
            rate = _hit_rate(stats)
            out.write(
                f"  {name:<20} {stats.get('hits', 0):>10} hits "
                f"{stats.get('misses', 0):>10} misses "
                f"{stats.get('evictions', 0):>8} evictions "
                f"{rate:>7.1%}\n"
            )
    if analytics:
        out.write("\ncache hit-ratio over time:\n")
        for name in sorted(analytics):
            series = analytics[name]["series"]
            if not series:
                continue
            tail = series[-1]
            out.write(
                f"  {name:<20} {len(series)} samples, "
                f"final {tail['hit_rate']:.1%} at t={tail['t']:.2f}s\n"
            )
    return out.getvalue()


def _mb(value: float | None) -> str:
    return "—" if value is None else f"{value / 1e6:.2f}"
