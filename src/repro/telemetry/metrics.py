"""Counters, gauges and histograms for the telemetry subsystem.

Metrics answer "how many / how much" questions that spans cannot: cache
hit rates, moves accepted vs. rejected, sketch merges.  A
:class:`MetricsRegistry` holds every instrument created during a run and
snapshots them for the exporters.

The no-op variants share module-level singletons so that disabled
telemetry costs one method call and no allocation per update — the hot
paths (``Objective.evaluate``, ``Match(S)``) can call them unconditionally.
"""

from __future__ import annotations

import math
import random
from typing import Any

#: Reservoir capacity per histogram.  Large enough for stable p50/p90/p99
#: estimates, small enough that a thousand histograms cost nothing.
RESERVOIR_SIZE = 128

#: The percentiles :meth:`Histogram.summary` reports.
PERCENTILES = ((50, "p50"), (90, "p90"), (99, "p99"))


def _percentile(values: list[float], pct: float) -> float:
    """Nearest-rank percentile over a *sorted* sample (empty → 0.0)."""
    if not values:
        return 0.0
    rank = max(1, math.ceil(pct / 100.0 * len(values)))
    return values[rank - 1]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value of the measured quantity."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Summary statistics over observed values, percentiles included.

    Full sample retention would make long solves unbounded in memory, so
    the histogram keeps the exact running summary (count/total/min/max)
    plus a **bounded reservoir** of at most :data:`RESERVOIR_SIZE`
    observations from which p50/p90/p99 are estimated (exact while the
    observation count fits the reservoir).  The reservoir uses classic
    Algorithm R with a private RNG seeded from the instrument name, so a
    run's percentile estimates are deterministic — same observations,
    same summary, every time.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_reservoir",
                 "_rng")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: list[float] = []
        self._rng = random.Random(name)

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._sample(value, self.count)

    def _sample(self, value: float, seen: int) -> None:
        """Reservoir intake: keep each of the ``seen`` values w.p. k/seen."""
        if len(self._reservoir) < RESERVOIR_SIZE:
            self._reservoir.append(value)
            return
        slot = self._rng.randrange(seen)
        if slot < RESERVOIR_SIZE:
            self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        """Mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge_summary(self, summary: dict[str, float]) -> None:
        """Fold another histogram's :meth:`summary` into this one.

        Count/total add, min/max widen; the mean is derived, so merging
        is exact.  This is how worker-process histograms land in the
        parent registry after a portfolio solve.  The other side's
        reservoir sample (the summary's ``samples`` list) feeds this
        reservoir one value at a time, weighted by the total stream
        length, so merged percentiles stay meaningful.  Old summary
        dicts without ``samples``/percentile fields merge exactly as
        before — percentiles then describe only the locally observed
        values.
        """
        count = int(summary.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(summary["total"])
        low = float(summary["min"])
        high = float(summary["max"])
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high
        for value in summary.get("samples", ()):
            self._sample(float(value), self.count)

    def summary(self) -> dict[str, Any]:
        """The summary as a plain dict (empty histograms are all-zero).

        Beyond the classic fields, carries ``p50``/``p90``/``p99``
        (nearest-rank over the reservoir; exact while ``count`` ≤
        reservoir size) and ``samples``, the reservoir itself, so a
        summary that crosses a process boundary can be merged without
        flattening the distribution.
        """
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
                    "samples": []}
        ordered = sorted(self._reservoir)
        data: dict[str, Any] = {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        for pct, key in PERCENTILES:
            data[key] = _percentile(ordered, pct)
        data["samples"] = list(self._reservoir)
        return data

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Create-on-first-use registry of named instruments."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter with this name, created on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge with this name, created on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram with this name, created on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    def counter_value(self, name: str, default: int = 0) -> int:
        """Current value of a counter, without creating it."""
        instrument = self._counters.get(name)
        return instrument.value if instrument is not None else default

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        """Current value of a gauge, without creating it."""
        instrument = self._gauges.get(name)
        return instrument.value if instrument is not None else default

    def histogram_summary(self, name: str) -> dict[str, float]:
        """Summary of a histogram; the all-zero summary if absent."""
        instrument = self._histograms.get(name)
        if instrument is None:
            return Histogram(name).summary()
        return instrument.summary()

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histograms accumulate; gauges are last-value-wins,
        so the snapshot's value overwrites the local one.  Snapshots are
        plain JSON-safe dicts, which is exactly what crosses a process
        boundary — the parallel solve engine merges each worker's metrics
        through this method.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_summary(summary)

    def snapshot(self) -> dict[str, Any]:
        """All instruments as plain nested dicts (sorted, JSON-safe)."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].summary()
                for name in sorted(self._histograms)
            },
        }


class _NoopCounter:
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NoopGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NoopHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NOOP_COUNTER = _NoopCounter()
_NOOP_GAUGE = _NoopGauge()
_NOOP_HISTOGRAM = _NoopHistogram()


class NoopMetrics:
    """Registry stand-in whose instruments discard every update."""

    __slots__ = ()

    def counter(self, name: str) -> _NoopCounter:
        return _NOOP_COUNTER

    def gauge(self, name: str) -> _NoopGauge:
        return _NOOP_GAUGE

    def histogram(self, name: str) -> _NoopHistogram:
        return _NOOP_HISTOGRAM

    def counter_value(self, name: str, default: int = 0) -> int:
        return default

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        return default

    def histogram_summary(self, name: str) -> dict[str, float]:
        return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
                "samples": []}

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}
