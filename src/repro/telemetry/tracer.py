"""Span-based tracing for the solve pipeline.

A :class:`Telemetry` instance owns a stack of open spans, a
:class:`~repro.telemetry.metrics.MetricsRegistry`, and a list of exporters.
Spans nest naturally through ``with`` blocks::

    with telemetry.span("session.solve", iteration=0):
        with telemetry.span("search.solve", optimizer="tabu"):
            ...

Each span is exported when it closes (children therefore appear before
their parents in the export stream; ``parent_index`` reconstructs the
tree).  Durations come from ``time.perf_counter`` and are reported
relative to the tracer's epoch so traces are readable without epoch
arithmetic.

:data:`NOOP` is the default telemetry: its spans and metrics discard
everything, and its per-call overhead is a couple of trivial method
calls, so library code instruments unconditionally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from .metrics import MetricsRegistry, NoopMetrics


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    name:
        Dot-separated span name (see docs/observability.md for the
        taxonomy).
    index:
        Creation order, unique within one tracer.
    parent_index:
        Index of the enclosing span, or None for a root span.
    depth:
        Nesting depth (0 for roots).
    start, end:
        Seconds since the tracer's epoch.
    attributes:
        Key/value annotations supplied at span creation.
    """

    name: str
    index: int
    parent_index: int | None
    depth: int
    start: float
    end: float
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock seconds the span was open."""
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict form (used by the JSON-lines exporter)."""
        return {
            "type": "span",
            "name": self.name,
            "index": self.index,
            "parent": self.parent_index,
            "depth": self.depth,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
            "attributes": self.attributes,
        }


class _Span:
    """An open span; created by :meth:`Telemetry.span`, closed by ``with``."""

    __slots__ = ("_telemetry", "name", "attributes", "index", "parent_index",
                 "depth", "_start")

    def __init__(self, telemetry: "Telemetry", name: str,
                 attributes: dict[str, Any]):
        self._telemetry = telemetry
        self.name = name
        self.attributes = attributes
        self.index = 0
        self.parent_index: int | None = None
        self.depth = 0
        self._start = 0.0

    def set(self, **attributes: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.attributes.update(attributes)

    def __enter__(self) -> "_Span":
        self._telemetry._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._telemetry._close(self)


class _NoopSpan:
    """Shared do-nothing span for disabled telemetry."""

    __slots__ = ()

    def set(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Telemetry:
    """A live tracer: spans, metrics and exporters for one run or session."""

    enabled = True

    def __init__(self, exporters: tuple | list = ()):
        self.exporters = list(exporters)
        self.metrics = MetricsRegistry()
        self._epoch = time.perf_counter()
        self._stack: list[_Span] = []
        self._next_index = 0
        self._span_durations: dict[str, list[float]] = {}

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _Span:
        """A context manager recording one named, attributed span."""
        return _Span(self, name, attributes)

    def _open(self, span: _Span) -> None:
        span.index = self._next_index
        self._next_index += 1
        if self._stack:
            parent = self._stack[-1]
            span.parent_index = parent.index
            span.depth = parent.depth + 1
        self._stack.append(span)
        span._start = time.perf_counter() - self._epoch

    def _close(self, span: _Span) -> None:
        end = time.perf_counter() - self._epoch
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover - misuse guard (out-of-order close)
            self._stack = [s for s in self._stack if s is not span]
        record = SpanRecord(
            name=span.name,
            index=span.index,
            parent_index=span.parent_index,
            depth=span.depth,
            start=span._start,
            end=end,
            attributes=span.attributes,
        )
        self._span_durations.setdefault(span.name, []).append(
            record.duration
        )
        for exporter in self.exporters:
            exporter.export_span(record)

    def now(self) -> float:
        """Seconds since this tracer's epoch.

        The timestamp scale all of this tracer's span records use; the
        parallel engine samples it when workers launch so absorbed worker
        spans line up with the parent timeline.
        """
        return time.perf_counter() - self._epoch

    def absorb(
        self,
        spans: "list[SpanRecord] | tuple[SpanRecord, ...]",
        metrics_snapshot: dict[str, Any] | None = None,
        offset: float = 0.0,
    ) -> None:
        """Fold a finished child tracer's spans and metrics into this one.

        Worker processes trace into their own :class:`Telemetry` (own
        epoch, own index space); this re-indexes their records into the
        parent's space and re-exports them, so ``--trace`` files and
        ``trace-report`` see one coherent tree.  Child root spans attach
        under the span currently open on this tracer (the engine calls
        this inside its ``portfolio.solve`` span); child-internal parent
        links are preserved.  ``offset`` shifts the child's epoch-relative
        timestamps onto this tracer's timeline.
        """
        if not spans:
            if metrics_snapshot:
                self.metrics.merge_snapshot(metrics_snapshot)
            return
        parent_index = self._stack[-1].index if self._stack else None
        base_depth = self._stack[-1].depth + 1 if self._stack else 0
        # Two passes: assign new indexes in the child's creation order
        # first, so records can be re-emitted in their original
        # completion order (children before parents, the exporter
        # contract) with every parent link already resolvable.
        index_map: dict[int, int] = {}
        for record in sorted(spans, key=lambda r: r.index):
            index_map[record.index] = self._next_index
            self._next_index += 1
        for record in spans:
            mapped_parent = (
                index_map[record.parent_index]
                if record.parent_index in index_map
                else parent_index
            )
            merged = SpanRecord(
                name=record.name,
                index=index_map[record.index],
                parent_index=mapped_parent,
                depth=record.depth + base_depth,
                start=record.start + offset,
                end=record.end + offset,
                attributes=dict(record.attributes),
            )
            self._span_durations.setdefault(merged.name, []).append(
                merged.duration
            )
            for exporter in self.exporters:
                exporter.export_span(merged)
        if metrics_snapshot:
            self.metrics.merge_snapshot(metrics_snapshot)

    # -- lifecycle -----------------------------------------------------------

    def span_summary(self) -> dict[str, dict[str, float]]:
        """Per-name span aggregates: count and total/mean seconds."""
        summary = {}
        for name in sorted(self._span_durations):
            durations = self._span_durations[name]
            total = sum(durations)
            summary[name] = {
                "count": len(durations),
                "total_seconds": total,
                "mean_seconds": total / len(durations),
            }
        return summary

    def close(self) -> None:
        """Flush the metrics snapshot to every exporter and close them."""
        snapshot = self.metrics.snapshot()
        for exporter in self.exporters:
            exporter.export_metrics(snapshot)
            exporter.close(self)

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Telemetry(spans={self._next_index}, "
            f"exporters={len(self.exporters)})"
        )


class NoopTelemetry:
    """The default tracer: every operation is a constant-time no-op."""

    enabled = False
    metrics = NoopMetrics()
    exporters: list = []

    __slots__ = ()

    def span(self, name: str, **attributes: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def now(self) -> float:
        return 0.0

    def absorb(self, spans, metrics_snapshot=None, offset: float = 0.0) -> None:
        pass

    def span_summary(self) -> dict[str, dict[str, float]]:
        return {}

    def close(self) -> None:
        pass

    def __enter__(self) -> "NoopTelemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __repr__(self) -> str:
        return "NoopTelemetry()"


#: Shared no-op instance installed as the process default.
NOOP = NoopTelemetry()
