"""Span-based tracing for the solve pipeline.

A :class:`Telemetry` instance owns a stack of open spans, a
:class:`~repro.telemetry.metrics.MetricsRegistry`, and a list of exporters.
Spans nest naturally through ``with`` blocks::

    with telemetry.span("session.solve", iteration=0):
        with telemetry.span("search.solve", optimizer="tabu"):
            ...

Each span is exported when it closes (children therefore appear before
their parents in the export stream; ``parent_index`` reconstructs the
tree).  Durations come from ``time.perf_counter`` and are reported
relative to the tracer's epoch so traces are readable without epoch
arithmetic.

:data:`NOOP` is the default telemetry: its spans and metrics discard
everything, and its per-call overhead is a couple of trivial method
calls, so library code instruments unconditionally.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from .metrics import MetricsRegistry, NoopMetrics


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One finished span.

    Attributes
    ----------
    name:
        Dot-separated span name (see docs/observability.md for the
        taxonomy).
    index:
        Creation order, unique within one tracer.
    parent_index:
        Index of the enclosing span, or None for a root span.
    depth:
        Nesting depth (0 for roots).
    start, end:
        Seconds since the tracer's epoch.
    attributes:
        Key/value annotations supplied at span creation.
    """

    name: str
    index: int
    parent_index: int | None
    depth: int
    start: float
    end: float
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall-clock seconds the span was open."""
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe dict form (used by the JSON-lines exporter)."""
        return {
            "type": "span",
            "name": self.name,
            "index": self.index,
            "parent": self.parent_index,
            "depth": self.depth,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
            "attributes": self.attributes,
        }


class _Span:
    """An open span; created by :meth:`Telemetry.span`, closed by ``with``."""

    __slots__ = ("_telemetry", "name", "attributes", "index", "parent_index",
                 "depth", "_start")

    def __init__(self, telemetry: "Telemetry", name: str,
                 attributes: dict[str, Any]):
        self._telemetry = telemetry
        self.name = name
        self.attributes = attributes
        self.index = 0
        self.parent_index: int | None = None
        self.depth = 0
        self._start = 0.0

    def set(self, **attributes: Any) -> None:
        """Attach attributes discovered while the span is open."""
        self.attributes.update(attributes)

    def __enter__(self) -> "_Span":
        self._telemetry._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._telemetry._close(self)


class _NoopSpan:
    """Shared do-nothing span for disabled telemetry."""

    __slots__ = ()

    def set(self, **attributes: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Telemetry:
    """A live tracer: spans, metrics and exporters for one run or session."""

    enabled = True

    def __init__(self, exporters: tuple | list = ()):
        self.exporters = list(exporters)
        self.metrics = MetricsRegistry()
        self._epoch = time.perf_counter()
        self._stack: list[_Span] = []
        self._next_index = 0
        self._span_durations: dict[str, list[float]] = {}

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _Span:
        """A context manager recording one named, attributed span."""
        return _Span(self, name, attributes)

    def _open(self, span: _Span) -> None:
        span.index = self._next_index
        self._next_index += 1
        if self._stack:
            parent = self._stack[-1]
            span.parent_index = parent.index
            span.depth = parent.depth + 1
        self._stack.append(span)
        span._start = time.perf_counter() - self._epoch

    def _close(self, span: _Span) -> None:
        end = time.perf_counter() - self._epoch
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:  # pragma: no cover - misuse guard (out-of-order close)
            self._stack = [s for s in self._stack if s is not span]
        record = SpanRecord(
            name=span.name,
            index=span.index,
            parent_index=span.parent_index,
            depth=span.depth,
            start=span._start,
            end=end,
            attributes=span.attributes,
        )
        self._span_durations.setdefault(span.name, []).append(
            record.duration
        )
        for exporter in self.exporters:
            exporter.export_span(record)

    # -- lifecycle -----------------------------------------------------------

    def span_summary(self) -> dict[str, dict[str, float]]:
        """Per-name span aggregates: count and total/mean seconds."""
        summary = {}
        for name in sorted(self._span_durations):
            durations = self._span_durations[name]
            total = sum(durations)
            summary[name] = {
                "count": len(durations),
                "total_seconds": total,
                "mean_seconds": total / len(durations),
            }
        return summary

    def close(self) -> None:
        """Flush the metrics snapshot to every exporter and close them."""
        snapshot = self.metrics.snapshot()
        for exporter in self.exporters:
            exporter.export_metrics(snapshot)
            exporter.close(self)

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Telemetry(spans={self._next_index}, "
            f"exporters={len(self.exporters)})"
        )


class NoopTelemetry:
    """The default tracer: every operation is a constant-time no-op."""

    enabled = False
    metrics = NoopMetrics()
    exporters: list = []

    __slots__ = ()

    def span(self, name: str, **attributes: Any) -> _NoopSpan:
        return _NOOP_SPAN

    def span_summary(self) -> dict[str, dict[str, float]]:
        return {}

    def close(self) -> None:
        pass

    def __enter__(self) -> "NoopTelemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def __repr__(self) -> str:
        return "NoopTelemetry()"


#: Shared no-op instance installed as the process default.
NOOP = NoopTelemetry()
