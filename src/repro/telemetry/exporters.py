"""Exporters: where finished spans and metric snapshots go.

Three built-ins cover the intended uses:

* :class:`InMemoryExporter` — tests and benchmarks inspect spans and the
  final snapshot programmatically;
* :class:`JsonLinesExporter` — one JSON object per line (spans as they
  close, one final ``metrics`` record), the ``mube solve --trace`` format;
* :class:`StderrSummaryExporter` — a human-readable table printed when
  the telemetry closes, the ``mube solve --stats`` output.

Custom exporters subclass :class:`Exporter` and override any subset of
the three hooks.
"""

from __future__ import annotations

import io
import json
import sys
from typing import Any, TextIO

from .tracer import SpanRecord, Telemetry


class Exporter:
    """Base exporter; every hook defaults to doing nothing."""

    def export_span(self, record: SpanRecord) -> None:
        """Called once per span, as it closes."""

    def export_event(self, event: Any) -> None:
        """Called once per decision event, when an
        :class:`~repro.explain.EventLog` shares this exporter."""

    def export_metrics(self, snapshot: dict[str, Any]) -> None:
        """Called once with the final metrics snapshot."""

    def close(self, telemetry: Telemetry) -> None:
        """Called after the metrics snapshot, when the telemetry closes."""


class InMemoryExporter(Exporter):
    """Collects everything in plain lists/dicts for assertions."""

    def __init__(self):
        self.spans: list[SpanRecord] = []
        self.events: list[Any] = []
        self.metrics: dict[str, Any] = {}

    def export_span(self, record: SpanRecord) -> None:
        self.spans.append(record)

    def export_event(self, event: Any) -> None:
        self.events.append(event)

    def export_metrics(self, snapshot: dict[str, Any]) -> None:
        self.metrics = snapshot

    # -- inspection helpers --------------------------------------------------

    def span_names(self) -> set[str]:
        """Distinct names among the collected spans."""
        return {span.name for span in self.spans}

    def find(self, name: str) -> list[SpanRecord]:
        """All spans with the given name, in completion order."""
        return [span for span in self.spans if span.name == name]

    def counters(self) -> dict[str, int]:
        """The counter section of the exported snapshot."""
        return dict(self.metrics.get("counters", {}))


class JsonLinesExporter(Exporter):
    """Streams spans (and the final metrics) as JSON lines.

    Accepts a path (the file is opened/closed by the exporter) or an open
    text stream (left open for the caller).
    """

    def __init__(self, target: str | TextIO):
        if isinstance(target, str):
            self._stream: TextIO = open(target, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = target
            self._owns_stream = False

    def export_span(self, record: SpanRecord) -> None:
        self._stream.write(
            json.dumps(record.to_dict(), default=str) + "\n"
        )

    def export_event(self, event: Any) -> None:
        self._stream.write(
            json.dumps(event.to_dict(), default=str) + "\n"
        )

    def export_metrics(self, snapshot: dict[str, Any]) -> None:
        self._stream.write(
            json.dumps({"type": "metrics", **snapshot}, default=str) + "\n"
        )

    def close(self, telemetry: Telemetry) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


class StderrSummaryExporter(Exporter):
    """Prints a per-span-name timing table and the counters on close."""

    def __init__(self, stream: TextIO | None = None):
        self._stream = stream

    def close(self, telemetry: Telemetry) -> None:
        stream = self._stream or sys.stderr
        stream.write(render_summary(telemetry))

    def export_metrics(self, snapshot: dict[str, Any]) -> None:
        self._snapshot = snapshot


def render_summary(telemetry: Telemetry) -> str:
    """The ``--stats`` table: span timings then non-zero counters."""
    out = io.StringIO()
    spans = telemetry.span_summary()
    out.write("== telemetry: spans ==\n")
    if not spans:
        out.write("  (no spans recorded)\n")
    else:
        width = max(len(name) for name in spans)
        out.write(
            f"  {'span':<{width}} {'count':>7} {'total s':>9} {'mean ms':>9}\n"
        )
        for name, row in spans.items():
            out.write(
                f"  {name:<{width}} {row['count']:>7.0f} "
                f"{row['total_seconds']:>9.3f} "
                f"{row['mean_seconds'] * 1e3:>9.3f}\n"
            )
    snapshot = telemetry.metrics.snapshot()
    counters = {k: v for k, v in snapshot["counters"].items() if v}
    out.write("== telemetry: counters ==\n")
    if not counters:
        out.write("  (no counters recorded)\n")
    for name, value in counters.items():
        out.write(f"  {name:<40} {value:>12}\n")
    gauges = snapshot["gauges"]
    if gauges:
        out.write("== telemetry: gauges ==\n")
        for name, value in gauges.items():
            out.write(f"  {name:<40} {value:>12.3f}\n")
    return out.getvalue()
