"""The process-wide current telemetry.

Library code asks :func:`get_telemetry` for the active tracer at call
time, so instrumentation needs no parameter threading through the many
layers between ``Session.solve`` and a PCSA union.  The default is the
shared no-op; callers that want a trace install a real
:class:`~repro.telemetry.tracer.Telemetry` for a scope::

    telemetry = Telemetry(exporters=[InMemoryExporter()])
    with use_telemetry(telemetry):
        session.solve()
    telemetry.close()

A plain module global (not a contextvar) keeps the lookup as cheap as
possible on hot paths; the solve pipeline is single-threaded by design
(optimizers share memo tables without locks), so thread-local routing
would buy nothing here.
"""

from __future__ import annotations

from contextlib import contextmanager

from .tracer import NOOP, NoopTelemetry, Telemetry

_current: Telemetry | NoopTelemetry = NOOP


def get_telemetry() -> Telemetry | NoopTelemetry:
    """The active tracer (the shared no-op unless one is installed)."""
    return _current


def set_telemetry(telemetry: Telemetry | NoopTelemetry | None) -> None:
    """Install a tracer process-wide (None restores the no-op)."""
    global _current
    _current = telemetry if telemetry is not None else NOOP


@contextmanager
def use_telemetry(telemetry: Telemetry | NoopTelemetry):
    """Install a tracer for the duration of a ``with`` block."""
    global _current
    previous = _current
    _current = telemetry
    try:
        yield telemetry
    finally:
        _current = previous
