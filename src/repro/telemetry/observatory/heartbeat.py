"""The live heartbeat channel between portfolio workers and the engine.

A portfolio solve used to be a black box while it ran: per-worker
progress only existed *after* a worker finished, timed out or crashed.
This module gives workers a voice mid-search.  A
:class:`HeartbeatEmitter` is installed as the process's progress hook
(:func:`~repro.search.base.install_progress_hook` — the sibling of the
cooperative ``install_stop_check`` mechanism) for the duration of one
worker attempt; every candidate batch the optimizer scores ticks the
emitter, which throttles on wall-clock and pushes a small frozen
:class:`Heartbeat` record into a sink.

Two sinks exist:

* in-process (``jobs=1`` and the degraded inline fallback), the sink is
  :meth:`~repro.telemetry.observatory.status.RunStatus.record_heartbeat`
  directly;
* in pool mode, the sink is :func:`queue_sink` over a **bounded**
  ``multiprocessing`` queue shipped to workers through the pool
  initializer, which the engine drains on a parent-side thread.

Heartbeats are **advisory and lossy by contract**: the queue is bounded
and :func:`offer` drops the oldest record rather than ever blocking the
worker; a full, broken or closed channel is silently ignored.  Emission
observes the optimizer's already-computed candidate scores and touches
no RNG, so a solve with heartbeats on is bit-identical to the same solve
with them off (held by tests/observability/).
"""

from __future__ import annotations

import math
import queue as queue_module
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

#: Capacity of the worker→engine heartbeat queue.  Small on purpose:
#: heartbeats describe *now*, so under backpressure the oldest record is
#: the right one to lose.
HEARTBEAT_QUEUE_SIZE = 512

#: Default minimum seconds between two heartbeats from one worker.
DEFAULT_HEARTBEAT_INTERVAL = 0.05


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """One worker's mid-search pulse.

    ``iteration`` counts scored candidate batches (one per optimizer
    iteration for every neighborhood-based optimizer);
    ``best_objective``/``feasible`` are the best ``(objective,
    feasible)`` pair the worker has *observed* so far this attempt;
    ``elapsed_seconds`` is wall-clock since the attempt started inside
    the worker.  ``final`` marks the last heartbeat of an attempt,
    emitted as the progress hook uninstalls.
    """

    worker: int
    attempt: int
    iteration: int
    best_objective: float
    feasible: bool
    elapsed_seconds: float
    final: bool = False

    def to_dict(self) -> dict:
        """JSON-safe dict form (used by tests and offline tooling)."""
        return {
            "worker": self.worker,
            "attempt": self.attempt,
            "iteration": self.iteration,
            "best_objective": self.best_objective,
            "feasible": self.feasible,
            "elapsed_seconds": self.elapsed_seconds,
            "final": self.final,
        }


def offer(channel, heartbeat: Heartbeat) -> bool:
    """Push a heartbeat without ever blocking: drop-oldest under pressure.

    Returns True iff the record landed.  Every failure mode of a
    multiprocessing queue — full, empty-on-evict, closed mid-shutdown —
    is swallowed, because losing a heartbeat must only ever cost
    visibility, never correctness or liveness of the worker.
    """
    try:
        channel.put_nowait(heartbeat)
        return True
    except queue_module.Full:
        pass
    except Exception:  # noqa: BLE001 - advisory channel, see docstring
        return False
    try:
        channel.get_nowait()
    except Exception:  # noqa: BLE001 - racing the drainer is fine
        pass
    try:
        channel.put_nowait(heartbeat)
        return True
    except Exception:  # noqa: BLE001 - still full/closed: drop this one
        return False


def queue_sink(channel) -> Callable[[Heartbeat], None]:
    """A sink that offers each heartbeat to a bounded queue."""

    def sink(heartbeat: Heartbeat) -> None:
        offer(channel, heartbeat)

    return sink


class HeartbeatEmitter:
    """Progress hook for one worker attempt: fold batches, emit throttled.

    Installed via :func:`~repro.search.base.progress_hook_scope` around
    :func:`~repro.search.parallel._execute_spec`.  Called with each
    scored candidate batch, it tracks the running ``(objective,
    feasible)`` best and the batch count, and emits at most one
    heartbeat per ``interval`` seconds (plus a final one from
    :meth:`close`).  Sink errors are swallowed — the emitter exists to
    observe the search, never to perturb it.
    """

    __slots__ = (
        "sink",
        "worker",
        "attempt",
        "interval",
        "iteration",
        "best_objective",
        "feasible",
        "emitted",
        "_started",
        "_last_emit",
    )

    def __init__(
        self,
        sink: Callable[[Heartbeat], None],
        worker: int,
        attempt: int = 0,
        interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    ):
        self.sink = sink
        self.worker = worker
        self.attempt = attempt
        self.interval = interval
        self.iteration = 0
        self.best_objective = -math.inf
        self.feasible = False
        self.emitted = 0
        self._started = time.perf_counter()
        self._last_emit = -math.inf

    def __call__(self, solutions: Sequence) -> None:
        """The progress-hook entrypoint: one scored batch observed."""
        self.iteration += 1
        for solution in solutions:
            if (solution.objective, solution.feasible) > (
                self.best_objective,
                self.feasible,
            ):
                self.best_objective = solution.objective
                self.feasible = solution.feasible
        now = time.perf_counter()
        if now - self._last_emit >= self.interval:
            self._last_emit = now
            self._emit(final=False)

    def close(self) -> None:
        """Emit the attempt's final heartbeat (best-effort)."""
        self._emit(final=True)

    def _emit(self, final: bool) -> None:
        heartbeat = Heartbeat(
            worker=self.worker,
            attempt=self.attempt,
            iteration=self.iteration,
            best_objective=self.best_objective,
            feasible=self.feasible,
            elapsed_seconds=time.perf_counter() - self._started,
            final=final,
        )
        try:
            self.sink(heartbeat)
            self.emitted += 1
        except Exception:  # noqa: BLE001 - advisory channel
            pass

    def __repr__(self) -> str:
        return (
            f"HeartbeatEmitter(worker={self.worker}, "
            f"attempt={self.attempt}, emitted={self.emitted})"
        )


__all__ = [
    "DEFAULT_HEARTBEAT_INTERVAL",
    "HEARTBEAT_QUEUE_SIZE",
    "Heartbeat",
    "HeartbeatEmitter",
    "offer",
    "queue_sink",
]
