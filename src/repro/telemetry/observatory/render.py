"""Terminal rendering for the run observatory.

Three audiences share this module: ``mube solve --progress`` draws an
in-place status line while a portfolio solve runs
(:class:`ProgressPrinter`), ``mube runs`` tabulates the run registry
(:func:`render_runs_table`), and ``mube runs show`` expands a single
record — including the fold-back of the ``portfolio.*`` telemetry
counters captured at record time (:func:`render_run_record`).

Everything here is pure string formatting over immutable snapshots and
records; no locks, no I/O except the printer's single stream.
"""

from __future__ import annotations

import sys
import time

from .registry import RunRecord
from .status import StatusSnapshot


def render_status_line(snapshot: StatusSnapshot) -> str:
    """One-line live picture of a portfolio solve.

    Example::

        [  3.2s] 2/4 done | 1 running 1 retrying | best 12.4310* | hb 57
    """
    parts = [f"{snapshot.completed}/{snapshot.total} done"]
    alive_bits = []
    if snapshot.running:
        alive_bits.append(f"{snapshot.running} running")
    if snapshot.retrying:
        alive_bits.append(f"{snapshot.retrying} retrying")
    if alive_bits:
        parts.append(" ".join(alive_bits))
    trouble_bits = []
    if snapshot.timed_out:
        trouble_bits.append(f"{snapshot.timed_out} timed-out")
    if snapshot.failed:
        trouble_bits.append(f"{snapshot.failed} failed")
    if trouble_bits:
        parts.append(" ".join(trouble_bits))
    best = snapshot.best_objective
    if best is not None:
        star = "*" if snapshot.best_feasible else ""
        parts.append(f"best {best:.4f}{star}")
    parts.append(f"hb {snapshot.heartbeats}")
    if snapshot.early_stopped:
        parts.append("early-stop")
    return f"[{snapshot.elapsed_seconds:6.1f}s] " + " | ".join(parts)


class ProgressPrinter:
    """Render snapshots as a carriage-return status line on one stream.

    Built for ``mube solve --progress``: each update overwrites the
    previous line (padded so a shrinking line leaves no debris), and
    :meth:`close` finishes with a newline so subsequent output starts
    clean.  When the stream is not a terminal (CI logs, pipes) the
    printer degrades to one plain line per ~second instead of emitting
    ``\\r`` spam.
    """

    def __init__(self, stream=None, min_interval: float = 0.0):
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self._last_width = 0
        self._last_print = -float("inf")
        self._isatty = bool(getattr(self.stream, "isatty", lambda: False)())

    def __call__(self, snapshot: StatusSnapshot) -> None:
        now = time.perf_counter()
        interval = self.min_interval if self._isatty else max(
            self.min_interval, 1.0
        )
        if not snapshot.finished and now - self._last_print < interval:
            return
        self._last_print = now
        line = render_status_line(snapshot)
        if self._isatty:
            padded = line.ljust(self._last_width)
            self._last_width = len(line)
            print(f"\r{padded}", end="", file=self.stream, flush=True)
        else:
            print(line, file=self.stream, flush=True)

    def close(self) -> None:
        """Terminate the in-place line so later output starts fresh."""
        if self._isatty and self._last_width:
            print(file=self.stream, flush=True)
            self._last_width = 0


def _format_when(started_at: float) -> str:
    try:
        return time.strftime(
            "%Y-%m-%d %H:%M:%S", time.localtime(started_at)
        )
    except (OverflowError, OSError, ValueError):
        return "?"


def render_runs_table(records: list[RunRecord]) -> str:
    """The ``mube runs`` listing: newest last, one line per record."""
    if not records:
        return "run registry is empty"
    rows = [
        (
            "RUN",
            "WHEN",
            "CMD",
            "OPT",
            "JOBS",
            "QUALITY",
            "FEAS",
            "STATUS",
        )
    ]
    for record in records:
        rows.append(
            (
                record.run_id,
                _format_when(record.started_at),
                record.command,
                record.optimizer or "-",
                str(record.jobs),
                f"{record.quality:.4f}",
                "yes" if record.feasible else "no",
                record.status,
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        for row in rows
    ]
    return "\n".join(line.rstrip() for line in lines)


def render_run_record(record: RunRecord) -> str:
    """The ``mube runs show <id>`` expansion of one registry record."""
    lines = [
        f"run {record.run_id} ({record.status})",
        f"  started      {_format_when(record.started_at)}",
        f"  command      {record.command}",
        f"  fingerprint  {record.fingerprint}",
        f"  optimizer    {record.optimizer or '-'}",
        f"  jobs         {record.jobs}",
        (
            f"  solution     quality={record.quality:.4f} "
            f"objective={record.objective:.4f} "
            f"feasible={'yes' if record.feasible else 'no'}"
        ),
        f"  selection    {list(record.selection)}",
        (
            f"  effort       {record.iterations} iterations, "
            f"{record.evaluations} evaluations, "
            f"{record.elapsed_seconds:.2f}s"
        ),
    ]
    if record.checkpoint:
        lines.append(f"  checkpoint   {record.checkpoint}")
    resilience = []
    if record.retries:
        resilience.append(f"{record.retries} retries")
    if record.timeouts:
        resilience.append(f"{record.timeouts} timeouts")
    if record.requeues:
        resilience.append(f"{record.requeues} requeues")
    if record.pool_rebuilds:
        resilience.append(f"{record.pool_rebuilds} pool rebuilds")
    if record.resumed_workers:
        resilience.append(f"{record.resumed_workers} resumed")
    if resilience:
        lines.append(f"  resilience   {', '.join(resilience)}")
    if record.heartbeats:
        lines.append(f"  heartbeats   {record.heartbeats}")
    if record.workers:
        lines.append("  workers:")
        for worker in record.workers:
            mark = (
                " <- winner"
                if worker.get("index") == record.winner_index
                and worker.get("status") == "ok"
                else ""
            )
            detail = worker.get("error")
            if worker.get("status") == "ok":
                detail = (
                    f"objective={worker.get('objective', 0.0):.4f} "
                    f"in {worker.get('elapsed_seconds', 0.0):.2f}s"
                )
            lines.append(
                "    "
                f"[{worker.get('index')}] {worker.get('label')}: "
                f"{worker.get('status')} "
                f"(attempts={worker.get('attempts', 1)}"
                f"{', resumed' if worker.get('resumed') else ''}) "
                f"{detail or ''}".rstrip()
                + mark
            )
    folded = record.portfolio_counters()
    if folded:
        lines.append("  portfolio counters:")
        for name, value in folded.items():
            lines.append(f"    {name} = {value}")
    return "\n".join(lines)


__all__ = [
    "ProgressPrinter",
    "render_run_record",
    "render_runs_table",
    "render_status_line",
]
