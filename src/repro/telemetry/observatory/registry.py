"""The durable run registry: every solve leaves a JSON-lines record.

``Session.solve`` (and therefore ``mube solve``) appends one record per
solve to ``.mube/runs.jsonl`` — the config fingerprint, the portfolio
and its seeds, per-worker outcomes/attempts/timings, the final quality,
a telemetry counter snapshot, and the checkpoint/resume linkage.  The
registry is what survives the process: ``mube runs`` lists it,
``mube runs show <id>`` renders one record, and the ROADMAP's future
solve service will poll it as its job store (submit → poll → fetch).

Appends are atomic at line granularity: each record is serialized to one
``\\n``-terminated line and written with a single ``write`` call on a
file opened in append mode, so concurrent writers (two sessions sharing
a registry) interleave whole records, never torn ones.  Malformed lines
— a crash mid-write on an exotic filesystem, a hand-edited file — are
skipped on load and counted, not fatal: the registry is an append-only
log, and one bad entry must not hide the rest.

The default location is ``.mube/runs.jsonl`` under the current
directory; ``MUBE_RUNS_PATH`` overrides it, and setting it to the empty
string disables recording process-wide.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import asdict, dataclass, field
from pathlib import Path

#: Environment override for the registry path ("" disables recording).
RUNS_PATH_ENV = "MUBE_RUNS_PATH"

#: Default registry location, relative to the working directory.
DEFAULT_RUNS_PATH = os.path.join(".mube", "runs.jsonl")

#: Run-record schema version; bumped on incompatible layout changes.
RUN_RECORD_VERSION = 1


def new_run_id() -> str:
    """A unique, sortable run id: UTC timestamp plus random suffix."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


@dataclass(frozen=True, slots=True)
class RunRecord:
    """One solve, durably described.

    ``workers`` holds one dict per portfolio worker — ``index``,
    ``label``, ``optimizer``, ``seed``, ``status`` (``ok`` / ``failed``
    / ``timed_out``), ``attempts``, ``resumed``, ``error``, and for
    successful workers ``objective``/``quality``/``iterations``/
    ``elapsed_seconds``.  A sequential (non-portfolio) solve records a
    single pseudo-worker so every record has the same shape.
    ``counters`` is the telemetry counter snapshot at record time (empty
    under the no-op tracer) — ``mube runs show`` folds the
    ``portfolio.*`` counters back out of it.
    """

    run_id: str
    started_at: float
    command: str
    fingerprint: str
    optimizer: str
    jobs: int
    quality: float
    objective: float
    feasible: bool
    selection: tuple[int, ...]
    iterations: int
    evaluations: int
    elapsed_seconds: float
    workers: tuple[dict, ...] = ()
    seeds: tuple[int, ...] = ()
    winner_index: int = 0
    early_stopped: bool = False
    retries: int = 0
    timeouts: int = 0
    requeues: int = 0
    pool_rebuilds: int = 0
    resumed_workers: int = 0
    checkpoint: str | None = None
    heartbeats: int = 0
    counters: dict = field(default_factory=dict)
    status: str = "ok"
    version: int = RUN_RECORD_VERSION

    def to_dict(self) -> dict:
        data = asdict(self)
        data["selection"] = list(self.selection)
        data["seeds"] = list(self.seeds)
        data["workers"] = [dict(worker) for worker in self.workers]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["selection"] = tuple(kwargs.get("selection", ()))
        kwargs["seeds"] = tuple(kwargs.get("seeds", ()))
        kwargs["workers"] = tuple(
            dict(w) for w in kwargs.get("workers", ())
        )
        return cls(**kwargs)

    def portfolio_counters(self) -> dict[str, int]:
        """The ``portfolio.*`` counter fold-back from the snapshot."""
        return {
            name: value
            for name, value in sorted(self.counters.items())
            if name.startswith("portfolio.")
        }


def build_run_record(
    result,
    fingerprint: str,
    command: str = "session.solve",
    jobs: int = 1,
    optimizer: str = "",
    checkpoint: str | None = None,
    counters: dict | None = None,
    heartbeats: int = 0,
    run_id: str | None = None,
    started_at: float | None = None,
    seed: int = 0,
) -> RunRecord:
    """Distill a :class:`~repro.search.base.SearchResult` into a record.

    ``result.portfolio`` (when present) supplies the per-worker outcome
    table and the resilience counters; a plain sequential result is
    recorded as a one-worker portfolio.  Duck-typed on the result's
    fields so the registry needs no import of the search layer.
    """
    solution = result.solution
    stats = result.stats
    portfolio = getattr(result, "portfolio", None)
    if portfolio is not None:
        workers = tuple(
            _worker_entry(outcome) for outcome in portfolio.workers
        )
        seeds = tuple(outcome.seed for outcome in portfolio.workers)
        winner = portfolio.winner_index
        jobs = portfolio.jobs
        extra = dict(
            early_stopped=portfolio.early_stopped,
            retries=portfolio.retries,
            timeouts=portfolio.timeouts,
            requeues=portfolio.requeues,
            pool_rebuilds=portfolio.pool_rebuilds,
            resumed_workers=portfolio.resumed_workers,
            elapsed_seconds=float(portfolio.elapsed_seconds),
        )
    else:
        workers = (
            {
                "index": 0,
                "label": optimizer or "sequential",
                "optimizer": optimizer,
                "seed": seed,
                "status": "ok",
                "attempts": 1,
                "resumed": False,
                "error": None,
                "objective": float(solution.objective),
                "quality": float(solution.quality),
                "iterations": int(stats.iterations),
                "elapsed_seconds": float(stats.elapsed_seconds),
            },
        )
        seeds = (seed,)
        winner = 0
        extra = dict(elapsed_seconds=float(stats.elapsed_seconds))
    return RunRecord(
        run_id=run_id or new_run_id(),
        started_at=started_at if started_at is not None else time.time(),
        command=command,
        fingerprint=fingerprint,
        optimizer=optimizer,
        jobs=jobs,
        quality=float(solution.quality),
        objective=float(solution.objective),
        feasible=bool(solution.feasible),
        selection=tuple(int(s) for s in sorted(solution.selected)),
        iterations=int(stats.iterations),
        evaluations=int(stats.evaluations),
        workers=workers,
        seeds=seeds,
        winner_index=winner,
        checkpoint=checkpoint,
        heartbeats=heartbeats,
        counters=dict(counters or {}),
        **extra,
    )


def _worker_entry(outcome) -> dict:
    """One portfolio worker outcome as a JSON-safe registry entry."""
    entry = {
        "index": outcome.index,
        "label": outcome.label,
        "optimizer": outcome.optimizer,
        "seed": outcome.seed,
        "status": (
            "ok"
            if outcome.ok
            else ("timed_out" if outcome.timed_out else "failed")
        ),
        "attempts": outcome.attempts,
        "resumed": outcome.resumed,
        "error": outcome.error,
    }
    if outcome.ok:
        entry.update(
            objective=float(outcome.result.solution.objective),
            quality=float(outcome.result.solution.quality),
            iterations=int(outcome.result.stats.iterations),
            elapsed_seconds=float(outcome.result.stats.elapsed_seconds),
        )
    return entry


class RunRegistry:
    """An append-only JSON-lines store of :class:`RunRecord` values."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.skipped_lines = 0

    def record(self, record: RunRecord) -> None:
        """Append one record as a single atomic line write."""
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), default=str) + "\n"
        with open(self.path, "a", encoding="utf-8") as stream:
            stream.write(line)

    def load(
        self,
        limit: int | None = None,
        status: str | None = None,
        command: str | None = None,
    ) -> list[RunRecord]:
        """Read records, oldest first, with optional filters.

        ``limit`` keeps only the *newest* N records after filtering;
        ``status`` matches exactly, ``command`` as a substring.
        Malformed lines are skipped (counted in ``skipped_lines``).
        """
        self.skipped_lines = 0
        records: list[RunRecord] = []
        if not self.path.exists():
            return records
        with open(self.path, encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = RunRecord.from_dict(json.loads(line))
                except (json.JSONDecodeError, TypeError, KeyError):
                    self.skipped_lines += 1
                    continue
                if status is not None and record.status != status:
                    continue
                if command is not None and command not in record.command:
                    continue
                records.append(record)
        if limit is not None and limit >= 0:
            records = records[-limit:] if limit else []
        return records

    def find(self, run_id: str) -> RunRecord | None:
        """The record whose id equals or uniquely starts with ``run_id``.

        On several prefix matches the newest wins — ids embed their
        timestamp, so "the latest run that looks like this" is the
        useful answer at a prompt.
        """
        matches = [
            record
            for record in self.load()
            if record.run_id == run_id or record.run_id.startswith(run_id)
        ]
        return matches[-1] if matches else None

    def __repr__(self) -> str:
        return f"RunRegistry({str(self.path)!r})"


def default_registry() -> RunRegistry | None:
    """The process-default registry, or None when recording is disabled.

    Honours :data:`RUNS_PATH_ENV`; an empty value disables recording
    (useful for batch experiments that should not grow a registry).
    """
    path = os.environ.get(RUNS_PATH_ENV, DEFAULT_RUNS_PATH)
    if not path:
        return None
    return RunRegistry(path)


__all__ = [
    "DEFAULT_RUNS_PATH",
    "RUNS_PATH_ENV",
    "RUN_RECORD_VERSION",
    "RunRecord",
    "RunRegistry",
    "build_run_record",
    "default_registry",
    "new_run_id",
]
