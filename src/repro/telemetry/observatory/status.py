"""Thread-safe live view of one portfolio solve.

The engine owns exactly one :class:`RunStatus` per observed solve and
feeds it from three directions: lifecycle transitions (submitted,
retrying, requeued, finished) from the engine thread, heartbeats from
the parent-side drain thread (pool mode) or inline emitters (``jobs=1``),
and the resume path for workers restored from a checkpoint.  Readers —
the ``on_update`` callback behind ``Session.solve(on_progress=...)`` and
``mube solve --progress`` — only ever see immutable
:class:`StatusSnapshot` values, so rendering can never race a worker
transition.

Everything here is observational: a `RunStatus` never feeds anything
back into the search, so attaching one cannot change a solve's result.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, replace

from .heartbeat import Heartbeat

#: The worker lifecycle states a :class:`WorkerView` can be in.
#: ``pending`` → ``running`` → (``retrying`` → ``running``)* → one of
#: ``done`` / ``failed`` / ``timed_out``.  Resumed workers jump straight
#: to their terminal state with ``resumed=True``.
WORKER_STATES = (
    "pending",
    "running",
    "retrying",
    "done",
    "failed",
    "timed_out",
)

_TERMINAL = frozenset({"done", "failed", "timed_out"})


@dataclass(frozen=True, slots=True)
class WorkerView:
    """One worker's slice of a :class:`StatusSnapshot` (immutable)."""

    index: int
    label: str
    optimizer: str
    seed: int
    state: str = "pending"
    attempt: int = 0
    attempts: int = 0
    iteration: int = 0
    best_objective: float | None = None
    feasible: bool = False
    heartbeats: int = 0
    error: str | None = None
    resumed: bool = False

    @property
    def finished(self) -> bool:
        """True iff the worker has reached a terminal state."""
        return self.state in _TERMINAL

    @property
    def alive(self) -> bool:
        """True iff the worker is still running or awaiting a retry."""
        return self.state in ("running", "retrying")


@dataclass(frozen=True, slots=True)
class StatusSnapshot:
    """A consistent point-in-time picture of the whole portfolio."""

    workers: tuple[WorkerView, ...]
    elapsed_seconds: float
    heartbeats: int
    early_stopped: bool = False
    finished: bool = False

    @property
    def total(self) -> int:
        return len(self.workers)

    @property
    def running(self) -> int:
        return sum(1 for w in self.workers if w.state == "running")

    @property
    def retrying(self) -> int:
        return sum(1 for w in self.workers if w.state == "retrying")

    @property
    def alive(self) -> int:
        return sum(1 for w in self.workers if w.alive)

    @property
    def done(self) -> int:
        return sum(1 for w in self.workers if w.state == "done")

    @property
    def failed(self) -> int:
        return sum(1 for w in self.workers if w.state == "failed")

    @property
    def timed_out(self) -> int:
        return sum(1 for w in self.workers if w.state == "timed_out")

    @property
    def completed(self) -> int:
        return sum(1 for w in self.workers if w.finished)

    @property
    def best_worker(self) -> WorkerView | None:
        """The worker holding the best observed ``(objective, feasible)``."""
        best: WorkerView | None = None
        for worker in self.workers:
            if worker.best_objective is None:
                continue
            if best is None or (
                worker.best_objective,
                worker.feasible,
            ) > (best.best_objective, best.feasible):
                best = worker
        return best

    @property
    def best_objective(self) -> float | None:
        """The global best objective observed so far, if any."""
        best = self.best_worker
        return best.best_objective if best is not None else None

    @property
    def best_feasible(self) -> bool:
        best = self.best_worker
        return best.feasible if best is not None else False


class RunStatus:
    """Mutable, lock-guarded aggregate behind the immutable snapshots.

    Parameters
    ----------
    on_update:
        Optional callback receiving a :class:`StatusSnapshot` after each
        state change.  Called outside the lock, throttled to at most one
        call per ``min_update_interval`` seconds — except lifecycle
        transitions (worker finished, run finished), which always fire.
        Exceptions raised by the callback are counted in
        :attr:`callback_errors` and swallowed: observation must never
        sink the solve it observes.
    min_update_interval:
        Throttle for heartbeat-driven callback invocations, in seconds.
    """

    def __init__(
        self,
        on_update: Callable[[StatusSnapshot], None] | None = None,
        min_update_interval: float = 0.1,
    ):
        self._lock = threading.Lock()
        self._workers: dict[int, WorkerView] = {}
        self._heartbeats = 0
        self._early_stopped = False
        self._finished = False
        self._started = time.perf_counter()
        self._on_update = on_update
        self._min_update_interval = min_update_interval
        self._last_update = -float("inf")
        self.callback_errors = 0

    # -- engine-side transitions ----------------------------------------------

    def begin(self, specs) -> None:
        """Register the portfolio's workers (all ``pending``)."""
        with self._lock:
            self._started = time.perf_counter()
            self._workers = {
                index: WorkerView(
                    index=index,
                    label=spec.describe(),
                    optimizer=spec.optimizer,
                    seed=spec.seed,
                )
                for index, spec in enumerate(specs)
            }
        self._notify(force=True)

    def mark_running(self, index: int, attempt: int) -> None:
        """A worker attempt was submitted (or started, in-process)."""
        self._update(index, state="running", attempt=attempt)

    def mark_retrying(self, index: int, attempt: int, reason: str) -> None:
        """A worker's attempt failed/timed out and a retry is queued."""
        self._update(
            index, state="retrying", attempt=attempt, error=reason,
            force=True,
        )

    def record_outcome(self, outcome) -> None:
        """Adopt a final :class:`~repro.search.parallel.WorkerOutcome`.

        Duck-typed on the outcome's fields so this module needs no
        import of the search layer.
        """
        if outcome.ok:
            state = "done"
            best = outcome.result.solution.objective
            feasible = outcome.result.solution.feasible
        else:
            state = "timed_out" if outcome.timed_out else "failed"
            best = None
            feasible = False
        with self._lock:
            view = self._view(outcome.index)
            fields: dict = {
                "state": state,
                "attempts": outcome.attempts,
                "error": outcome.error,
                "resumed": outcome.resumed,
            }
            if best is not None:
                fields["best_objective"] = best
                fields["feasible"] = feasible
            self._workers[outcome.index] = replace(view, **fields)
        self._notify(force=True)

    def mark_early_stop(self) -> None:
        with self._lock:
            self._early_stopped = True
        self._notify(force=True)

    def finish(self) -> None:
        """The solve returned; emit one last forced update."""
        with self._lock:
            self._finished = True
        self._notify(force=True)

    # -- heartbeat intake ------------------------------------------------------

    def record_heartbeat(self, heartbeat: Heartbeat) -> None:
        """Fold one worker heartbeat into the aggregate."""
        with self._lock:
            self._heartbeats += 1
            view = self._workers.get(heartbeat.worker)
            if view is None or view.finished:
                # Late pulse from an abandoned/cancelled attempt; count
                # it, but never resurrect a terminal worker.
                return
            fields: dict = {
                "heartbeats": view.heartbeats + 1,
                "iteration": heartbeat.iteration,
                "attempt": heartbeat.attempt,
            }
            if view.state == "pending":
                fields["state"] = "running"
            if heartbeat.best_objective > -float("inf") and (
                view.best_objective is None
                or (heartbeat.best_objective, heartbeat.feasible)
                > (view.best_objective, view.feasible)
            ):
                fields["best_objective"] = heartbeat.best_objective
                fields["feasible"] = heartbeat.feasible
            self._workers[heartbeat.worker] = replace(view, **fields)
        self._notify(force=False)

    # -- reading ---------------------------------------------------------------

    @property
    def heartbeats(self) -> int:
        """Total heartbeats received (including late/dropped-worker ones)."""
        with self._lock:
            return self._heartbeats

    def snapshot(self) -> StatusSnapshot:
        """A consistent immutable picture of the run right now."""
        with self._lock:
            return StatusSnapshot(
                workers=tuple(
                    self._workers[index] for index in sorted(self._workers)
                ),
                elapsed_seconds=time.perf_counter() - self._started,
                heartbeats=self._heartbeats,
                early_stopped=self._early_stopped,
                finished=self._finished,
            )

    # -- internals -------------------------------------------------------------

    def _view(self, index: int) -> WorkerView:
        view = self._workers.get(index)
        if view is None:
            # An index the engine never registered (defensive): create a
            # stub so late signals still land somewhere visible.
            view = self._workers[index] = WorkerView(
                index=index, label=f"worker[{index}]", optimizer="?", seed=0
            )
        return view

    def _update(self, index: int, force: bool = False, **fields) -> None:
        with self._lock:
            view = self._view(index)
            if view.finished:
                return
            self._workers[index] = replace(view, **fields)
        self._notify(force=force)

    def _notify(self, force: bool) -> None:
        callback = self._on_update
        if callback is None:
            return
        now = time.perf_counter()
        with self._lock:
            if not force and now - self._last_update < (
                self._min_update_interval
            ):
                return
            self._last_update = now
        try:
            callback(self.snapshot())
        except Exception:  # noqa: BLE001 - observation must not sink solves
            self.callback_errors += 1

    def __repr__(self) -> str:
        snap = self.snapshot()
        return (
            f"RunStatus({snap.completed}/{snap.total} finished, "
            f"{snap.heartbeats} heartbeats)"
        )


__all__ = [
    "RunStatus",
    "StatusSnapshot",
    "WORKER_STATES",
    "WorkerView",
]
