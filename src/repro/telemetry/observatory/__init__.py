"""The run observatory: live solve visibility and a durable run log.

Three connected layers over the portfolio engine:

* **heartbeats** (:mod:`.heartbeat`) — workers pulse advisory, lossy
  :class:`Heartbeat` records through a bounded queue while they search;
* **status** (:mod:`.status`) — the engine folds heartbeats and
  lifecycle transitions into a thread-safe :class:`RunStatus` whose
  immutable :class:`StatusSnapshot` views back
  ``Session.solve(on_progress=...)`` and ``mube solve --progress``;
* **registry** (:mod:`.registry`) — every solve appends a durable
  :class:`RunRecord` line to ``.mube/runs.jsonl``, listed by
  ``mube runs`` and rendered by ``mube runs show`` (:mod:`.render`).

The observatory only ever observes: attaching any part of it must not
change what a solve returns.
"""

from .heartbeat import (
    DEFAULT_HEARTBEAT_INTERVAL,
    HEARTBEAT_QUEUE_SIZE,
    Heartbeat,
    HeartbeatEmitter,
    offer,
    queue_sink,
)
from .registry import (
    DEFAULT_RUNS_PATH,
    RUNS_PATH_ENV,
    RunRecord,
    RunRegistry,
    build_run_record,
    default_registry,
    new_run_id,
)
from .render import (
    ProgressPrinter,
    render_run_record,
    render_runs_table,
    render_status_line,
)
from .status import WORKER_STATES, RunStatus, StatusSnapshot, WorkerView

__all__ = [
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_RUNS_PATH",
    "HEARTBEAT_QUEUE_SIZE",
    "Heartbeat",
    "HeartbeatEmitter",
    "ProgressPrinter",
    "RUNS_PATH_ENV",
    "RunRecord",
    "RunRegistry",
    "RunStatus",
    "StatusSnapshot",
    "WORKER_STATES",
    "WorkerView",
    "build_run_record",
    "default_registry",
    "new_run_id",
    "offer",
    "queue_sink",
    "render_run_record",
    "render_runs_table",
    "render_status_line",
]
