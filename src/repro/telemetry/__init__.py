"""Telemetry: spans, metrics and exporters for the solve pipeline.

The measurement substrate for every perf/scaling change: a span-based
tracer (:class:`Telemetry`), a metrics registry (counters, gauges,
histograms), and pluggable exporters.  The default is a true no-op
(:data:`NOOP`) whose overhead is negligible, so every layer of the
pipeline instruments unconditionally.  See docs/observability.md for the
span taxonomy and exporter formats.
"""

from .exporters import (
    Exporter,
    InMemoryExporter,
    JsonLinesExporter,
    StderrSummaryExporter,
    render_summary,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, NoopMetrics
from .runtime import get_telemetry, set_telemetry, use_telemetry
from .trace_report import (
    Trace,
    TraceSpan,
    load_trace,
    render_span_tree,
    render_time_table,
    render_trace_report,
    time_by_name,
)
from .tracer import NOOP, NoopTelemetry, SpanRecord, Telemetry

__all__ = [
    "Counter",
    "Exporter",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JsonLinesExporter",
    "MetricsRegistry",
    "NOOP",
    "NoopMetrics",
    "NoopTelemetry",
    "SpanRecord",
    "StderrSummaryExporter",
    "Telemetry",
    "Trace",
    "TraceSpan",
    "get_telemetry",
    "load_trace",
    "render_span_tree",
    "render_summary",
    "render_time_table",
    "render_trace_report",
    "set_telemetry",
    "time_by_name",
    "use_telemetry",
]
