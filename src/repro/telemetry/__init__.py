"""Telemetry: spans, metrics and exporters for the solve pipeline.

The measurement substrate for every perf/scaling change: a span-based
tracer (:class:`Telemetry`), a metrics registry (counters, gauges,
histograms), and pluggable exporters.  The default is a true no-op
(:data:`NOOP`) whose overhead is negligible, so every layer of the
pipeline instruments unconditionally.  See docs/observability.md for the
span taxonomy and exporter formats.
"""

from .exporters import (
    Exporter,
    InMemoryExporter,
    JsonLinesExporter,
    StderrSummaryExporter,
    render_summary,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, NoopMetrics
from .runtime import get_telemetry, set_telemetry, use_telemetry
from .tracer import NOOP, NoopTelemetry, SpanRecord, Telemetry

__all__ = [
    "Counter",
    "Exporter",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JsonLinesExporter",
    "MetricsRegistry",
    "NOOP",
    "NoopMetrics",
    "NoopTelemetry",
    "SpanRecord",
    "StderrSummaryExporter",
    "Telemetry",
    "get_telemetry",
    "render_summary",
    "set_telemetry",
    "use_telemetry",
]
