"""Telemetry: spans, metrics and exporters for the solve pipeline.

The measurement substrate for every perf/scaling change: a span-based
tracer (:class:`Telemetry`), a metrics registry (counters, gauges,
histograms), and pluggable exporters.  The default is a true no-op
(:data:`NOOP`) whose overhead is negligible, so every layer of the
pipeline instruments unconditionally.  See docs/observability.md for the
span taxonomy and exporter formats.
"""

from .chrome_trace import spans_to_chrome, trace_to_chrome, write_chrome_trace
from .complexity import (
    LogLogFit,
    ProfileConfig,
    fit_loglog,
    render_profile_report,
    run_profile,
)
from .exporters import (
    Exporter,
    InMemoryExporter,
    JsonLinesExporter,
    StderrSummaryExporter,
    render_summary,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, NoopMetrics
from .profiler import (
    NOOP_PROFILER,
    NoopPhaseProfiler,
    PhaseProfiler,
    get_profiler,
    phase_profile,
    render_phase_report,
    set_profiler,
    use_profiler,
)
from .runtime import get_telemetry, set_telemetry, use_telemetry
from .trace_report import (
    Trace,
    TraceSpan,
    load_trace,
    render_span_tree,
    render_time_table,
    render_trace_report,
    time_by_name,
)
from .tracer import NOOP, NoopTelemetry, SpanRecord, Telemetry

__all__ = [
    "Counter",
    "Exporter",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JsonLinesExporter",
    "LogLogFit",
    "MetricsRegistry",
    "NOOP",
    "NOOP_PROFILER",
    "NoopMetrics",
    "NoopPhaseProfiler",
    "NoopTelemetry",
    "PhaseProfiler",
    "ProfileConfig",
    "SpanRecord",
    "StderrSummaryExporter",
    "Telemetry",
    "Trace",
    "TraceSpan",
    "fit_loglog",
    "get_profiler",
    "get_telemetry",
    "load_trace",
    "phase_profile",
    "render_phase_report",
    "render_profile_report",
    "render_span_tree",
    "render_summary",
    "render_time_table",
    "render_trace_report",
    "run_profile",
    "set_profiler",
    "set_telemetry",
    "spans_to_chrome",
    "time_by_name",
    "trace_to_chrome",
    "use_profiler",
    "use_telemetry",
    "write_chrome_trace",
]
