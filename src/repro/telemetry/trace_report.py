"""Offline analysis of ``--trace`` JSON-lines files.

A trace file (written by :class:`~repro.telemetry.JsonLinesExporter`)
contains one JSON object per line: spans in completion order, optional
decision-event records, and a final metrics snapshot.  This module
reconstructs the span tree from the ``index``/``parent`` links and
renders the time-by-span-name table — the analysis docs/observability.md
used to do with an inline script, now available as
``mube trace-report FILE.jsonl``.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from typing import Any


@dataclass
class TraceSpan:
    """One span parsed back from a trace file."""

    name: str
    index: int
    parent: int | None
    depth: int
    start: float
    duration: float
    attributes: dict[str, Any]
    children: list["TraceSpan"] = field(default_factory=list)


@dataclass
class Trace:
    """A fully parsed trace file."""

    spans: list[TraceSpan]
    events: list[dict[str, Any]]
    metrics: dict[str, Any]

    @property
    def roots(self) -> list[TraceSpan]:
        """Top-level spans, in start order."""
        return sorted(
            (s for s in self.spans if s.parent is None),
            key=lambda s: s.start,
        )

    def total_seconds(self) -> float:
        """Wall-clock covered by the trace (first start to last end)."""
        if not self.spans:
            return 0.0
        start = min(s.start for s in self.spans)
        end = max(s.start + s.duration for s in self.spans)
        return end - start


def load_trace(path: str) -> Trace:
    """Parse a JSON-lines trace file and link the span tree.

    Unknown record types are ignored, so the loader stays compatible
    with future record kinds riding the same exporter.
    """
    spans: list[TraceSpan] = []
    events: list[dict[str, Any]] = []
    metrics: dict[str, Any] = {}
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "span":
                spans.append(
                    TraceSpan(
                        name=record["name"],
                        index=record["index"],
                        parent=record.get("parent"),
                        depth=record.get("depth", 0),
                        start=record.get("start", 0.0),
                        duration=record.get("duration", 0.0),
                        attributes=record.get("attributes", {}),
                    )
                )
            elif kind == "event":
                events.append(record)
            elif kind == "metrics":
                metrics = {
                    key: value
                    for key, value in record.items()
                    if key != "type"
                }
    by_index = {span.index: span for span in spans}
    for span in spans:
        parent = by_index.get(span.parent) if span.parent is not None else None
        if parent is not None:
            parent.children.append(span)
    for span in spans:
        span.children.sort(key=lambda s: s.start)
    return Trace(spans=spans, events=events, metrics=metrics)


def time_by_name(spans: list[TraceSpan]) -> dict[str, dict[str, float]]:
    """Per-name aggregates: count, total and mean seconds, sorted by total."""
    totals: dict[str, list[float]] = {}
    for span in spans:
        totals.setdefault(span.name, []).append(span.duration)
    summary = {}
    for name in sorted(
        totals, key=lambda n: -sum(totals[n])
    ):
        durations = totals[name]
        total = sum(durations)
        summary[name] = {
            "count": len(durations),
            "total_seconds": total,
            "mean_seconds": total / len(durations),
        }
    return summary


def render_time_table(trace: Trace) -> str:
    """The time-by-span-name table (the docs' old inline script)."""
    out = io.StringIO()
    summary = time_by_name(trace.spans)
    if not summary:
        return "(no spans in trace)\n"
    wall = trace.total_seconds()
    width = max(len(name) for name in summary)
    out.write(
        f"{'span':<{width}} {'count':>7} {'total s':>9} {'mean ms':>9} "
        f"{'% wall':>7}\n"
    )
    for name, row in summary.items():
        share = row["total_seconds"] / wall if wall else 0.0
        out.write(
            f"{name:<{width}} {row['count']:>7.0f} "
            f"{row['total_seconds']:>9.3f} "
            f"{row['mean_seconds'] * 1e3:>9.3f} {share:>7.1%}\n"
        )
    return out.getvalue()


#: Indentation stops growing past this depth — a recursive or
#: pathologically deep trace would otherwise drift every line off the
#: right edge of a wide terminal.  Deeper levels keep a ``[depth]``
#: marker instead, so nesting stays readable without the drift.
MAX_TREE_INDENT = 12


def render_span_tree(trace: Trace, max_depth: int = 3) -> str:
    """The reconstructed span tree, truncated at ``max_depth``.

    Sibling runs of the same span name are folded into one line with a
    repeat count — a tabu solve has hundreds of ``search.iteration``
    spans and a tree that lists each one is unreadable.  Indentation is
    clamped at :data:`MAX_TREE_INDENT` levels (deeper lines carry an
    explicit ``[depth]`` marker), and subtrees cut off by ``max_depth``
    are announced with a count of the spans hidden below the cut rather
    than silently dropped.
    """
    out = io.StringIO()
    for root in trace.roots:
        _render_subtree(out, [root], 0, max_depth)
    return out.getvalue()


def render_trace_report(
    path: str, tree: bool = False, max_depth: int = 3
) -> str:
    """The full ``mube trace-report`` output for one trace file.

    A file with no span records — empty, or metrics/events-only (a
    ``--trace`` run under the no-op tracer, say) — is *not* an error:
    the report states plainly that no spans were recorded and still
    renders whatever counters and decision events the file does carry.
    """
    trace = load_trace(path)
    out = io.StringIO()
    out.write(
        f"{path}: {len(trace.spans)} spans, {len(trace.events)} events, "
        f"{trace.total_seconds():.3f}s wall\n\n"
    )
    if not trace.spans:
        out.write("no spans recorded in this trace file\n")
    else:
        out.write("== time by span name ==\n")
        out.write(render_time_table(trace))
        if tree:
            out.write("\n== span tree ==\n")
            out.write(render_span_tree(trace, max_depth=max_depth))
    counters = {
        name: value
        for name, value in trace.metrics.get("counters", {}).items()
        if value
    }
    if counters:
        out.write("\n== counters ==\n")
        for name, value in counters.items():
            out.write(f"{name:<40} {value:>12}\n")
    if trace.events:
        kinds: dict[str, int] = {}
        for event in trace.events:
            kind = event.get("kind", "?")
            kinds[kind] = kinds.get(kind, 0) + 1
        out.write("\n== decision events ==\n")
        for kind, count in sorted(kinds.items()):
            out.write(f"{kind:<40} {count:>12}\n")
    return out.getvalue()


def _render_subtree(
    out: io.StringIO,
    group: list[TraceSpan],
    depth: int,
    max_depth: int,
) -> None:
    """Render one folded sibling group and recurse into its children."""
    first = group[0]
    total = sum(s.duration for s in group)
    indent = "  " * min(depth, MAX_TREE_INDENT)
    marker = f"[{depth}] " if depth > MAX_TREE_INDENT else ""
    count = f" ×{len(group)}" if len(group) > 1 else ""
    out.write(f"{indent}{marker}{first.name}{count}  {total:.3f}s\n")
    children: list[TraceSpan] = []
    for span in group:
        children.extend(span.children)
    if depth + 1 > max_depth:
        hidden = sum(1 + _descendant_count(child) for child in children)
        if hidden:
            out.write(
                f"{indent}  … {hidden} span(s) below depth {max_depth} "
                f"(raise --max-depth to see them)\n"
            )
        return
    folded: dict[str, list[TraceSpan]] = {}
    for child in sorted(children, key=lambda s: s.start):
        folded.setdefault(child.name, []).append(child)
    for child_group in folded.values():
        _render_subtree(out, child_group, depth + 1, max_depth)


def _descendant_count(span: TraceSpan) -> int:
    """Number of spans strictly below one span in the tree."""
    return sum(1 + _descendant_count(child) for child in span.children)
