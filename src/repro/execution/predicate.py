"""Synthetic query predicates over opaque tuples.

The paper's cost argument (§1) is about *executing queries* against the
data integration system: every selected source must be contacted, its
answer transferred, mapped to the mediated schema, and deduplicated against
the other sources' answers.  Our tuples are opaque ids, so predicates are
simulated: a predicate deterministically selects a pseudo-random
``selectivity`` fraction of the whole tuple-id space (via a seeded hash),
the way "price < 20" selects a fixed subset of real tuples.

A predicate is *addressed* at a mediated-schema GA: a source can evaluate
it only if the source expresses that GA (it has one of the GA's
attributes) — query interfaces only filter on fields they expose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import GlobalAttribute, Source
from ..exceptions import ReproError
from ..sketch.hashing import splitmix64

#: Hash-space threshold scale (2**64 as float for mask comparisons).
_HASH_SPACE = float(2**64)


@dataclass(frozen=True)
class Predicate:
    """One simulated selection predicate.

    Attributes
    ----------
    field:
        The mediated-schema GA the predicate filters on.
    selectivity:
        Fraction of the tuple space the predicate keeps, in (0, 1].
    seed:
        Identity of the predicate: two predicates with the same seed select
        the same tuples (like re-running the same condition), different
        seeds select independent subsets.
    label:
        Optional human-readable description for reports.
    """

    field: GlobalAttribute
    selectivity: float
    seed: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.selectivity <= 1.0:
            raise ReproError(
                f"selectivity must be in (0, 1], got {self.selectivity}"
            )

    def mask(self, tuple_ids: np.ndarray) -> np.ndarray:
        """Boolean mask of the tuples this predicate keeps."""
        if tuple_ids.size == 0:
            return np.zeros(0, dtype=bool)
        hashed = splitmix64(
            tuple_ids.astype(np.uint64, copy=False),
            seed=self.seed * 2_654_435_761 + 1,
        )
        threshold = np.uint64(
            min(int(self.selectivity * _HASH_SPACE), 2**64 - 1)
        )
        return hashed < threshold

    def field_names(self) -> frozenset[str]:
        """The synonymous attribute names the predicate's GA collects."""
        return frozenset(attr.name for attr in self.field)

    def evaluable_by(self, source: Source) -> bool:
        """True iff the source exposes the predicate's field.

        Name-based: the GA doubles as a *field description* — the set of
        synonymous names for one concept — so any source exposing one of
        those names can evaluate the predicate, even a source that was not
        part of the schema the GA came from.  This is what lets one query
        workload run against integration systems of different sizes.
        """
        names = self.field_names()
        return any(name in names for name in source.schema)

    def describe(self) -> str:
        """Short rendering for reports."""
        name = self.label or "/".join(sorted(set(self.field.names()))[:2])
        return f"{name}~{self.selectivity:.0%}"


@dataclass(frozen=True)
class Query:
    """A conjunctive query: tuples must satisfy every predicate."""

    predicates: tuple[Predicate, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ReproError("a query needs at least one predicate")

    def mask(self, tuple_ids: np.ndarray) -> np.ndarray:
        """Conjunction of the predicate masks."""
        combined = np.ones(tuple_ids.shape, dtype=bool)
        for predicate in self.predicates:
            combined &= predicate.mask(tuple_ids)
        return combined

    def expected_selectivity(self) -> float:
        """Product of the predicate selectivities (independent hashes)."""
        result = 1.0
        for predicate in self.predicates:
            result *= predicate.selectivity
        return result

    def evaluable_by(self, source: Source) -> bool:
        """True iff the source can evaluate *every* predicate."""
        return all(p.evaluable_by(source) for p in self.predicates)

    def describe(self) -> str:
        """Short rendering for reports."""
        body = " AND ".join(p.describe() for p in self.predicates)
        return f"{self.label or 'query'}[{body}]"


@dataclass(frozen=True)
class QueryWorkloadConfig:
    """Parameters for random query generation."""

    predicates_per_query: tuple[int, int] = (1, 2)
    selectivity_range: tuple[float, float] = (0.05, 0.4)
    seed: int = 0

    def __post_init__(self) -> None:
        low, high = self.predicates_per_query
        if not 1 <= low <= high:
            raise ReproError(
                "predicates_per_query must satisfy 1 <= low <= high"
            )
        slow, shigh = self.selectivity_range
        if not 0.0 < slow <= shigh <= 1.0:
            raise ReproError(
                "selectivity_range must satisfy 0 < low <= high <= 1"
            )


def random_queries(
    schema,
    count: int,
    config: QueryWorkloadConfig = QueryWorkloadConfig(),
) -> tuple[Query, ...]:
    """Random conjunctive queries over a mediated schema's GAs.

    Predicates prefer large GAs (widely expressed concepts are queried
    more), mirroring how users query the fields most interfaces share.
    """
    gas = sorted(schema, key=len, reverse=True)
    if not gas:
        raise ReproError("cannot generate queries over an empty schema")
    rng = np.random.default_rng(config.seed)
    weights = np.array([len(ga) for ga in gas], dtype=np.float64)
    weights /= weights.sum()
    queries = []
    low, high = config.predicates_per_query
    slow, shigh = config.selectivity_range
    for index in range(count):
        n_predicates = int(rng.integers(low, high + 1))
        chosen = rng.choice(
            len(gas),
            size=min(n_predicates, len(gas)),
            replace=False,
            p=weights,
        )
        predicates = tuple(
            Predicate(
                field=gas[i],
                selectivity=float(rng.uniform(slow, shigh)),
                seed=config.seed * 10_007 + index * 101 + int(i),
            )
            for i in chosen
        )
        queries.append(Query(predicates, label=f"q{index}"))
    return tuple(queries)
