"""Query execution over a µBE integration system.

Takes µBE's output — a selected source set and its mediated schema — and
runs conjunctive queries against it the way a mediator would: route each
query to the selected sources that can evaluate it, fetch and union their
answers, deduplicate, and account the costs.  Executed against synthetic
workloads that kept their tuple ids (``keep_tuples=True``), it turns the
QEFs' *predictions* into measured outcomes:

* Coverage  ↦ answer completeness vs the whole universe;
* Redundancy ↦ fraction of fetched tuples that were duplicates;
* source characteristics ↦ realized latency.

`benchmarks/bench_execution.py` quantifies those correlations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import MediatedSchema, Solution, Universe
from ..exceptions import ReproError
from .cost import CostModel, QueryCost
from .predicate import Query


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one executed query."""

    query: Query
    answer_ids: np.ndarray
    per_source_counts: dict[int, int]
    skipped_source_ids: tuple[int, ...]
    cost: QueryCost

    @property
    def answer_count(self) -> int:
        """Distinct tuples in the final answer."""
        return int(self.answer_ids.size)

    @property
    def fetched_count(self) -> int:
        """Total tuples fetched from all contacted sources."""
        return sum(self.per_source_counts.values())

    @property
    def duplicate_count(self) -> int:
        """Fetched tuples that were already supplied by another source."""
        return self.fetched_count - self.answer_count

    @property
    def duplicate_ratio(self) -> float:
        """Duplicates as a fraction of fetched tuples (0 when none fetched)."""
        fetched = self.fetched_count
        if fetched == 0:
            return 0.0
        return self.duplicate_count / fetched

    def completeness_against(self, full_answer_count: int) -> float:
        """Fraction of the full (universe-wide) answer this result reached.

        Sound because every source draws from the same global tuple-id
        space: the integration answer is always a subset of the universe
        answer.
        """
        if full_answer_count <= 0:
            return 1.0
        return self.answer_count / full_answer_count


class IntegrationSystem:
    """A queryable data integration system built from a µBE solution."""

    def __init__(
        self,
        universe: Universe,
        selected: frozenset[int],
        schema: MediatedSchema,
        cost_model: CostModel | None = None,
    ):
        unknown = selected - universe.source_ids
        if unknown:
            raise ReproError(
                f"selected sources {sorted(unknown)} are not in the universe"
            )
        self.universe = universe
        self.selected = frozenset(selected)
        self.schema = schema
        self.cost_model = cost_model or CostModel()

    @classmethod
    def from_solution(
        cls,
        universe: Universe,
        solution: Solution,
        cost_model: CostModel | None = None,
    ) -> "IntegrationSystem":
        """Build the system µBE's solution describes.

        Raises
        ------
        ReproError
            If the solution carries no mediated schema.
        """
        if solution.schema is None:
            raise ReproError(
                "cannot build an integration system from a NULL schema"
            )
        return cls(
            universe, solution.selected, solution.schema, cost_model
        )

    def answerable_source_ids(self, query: Query) -> tuple[int, ...]:
        """Selected sources able to evaluate every predicate of a query."""
        return tuple(
            sid
            for sid in sorted(self.selected)
            if query.evaluable_by(self.universe.source(sid))
        )

    def execute(self, query: Query) -> QueryResult:
        """Run a query: route, fetch, union, deduplicate, account costs.

        Raises
        ------
        ReproError
            If an answerable source did not retain its tuple ids (the
            synthetic workload must be generated with ``keep_tuples=True``).
        """
        answerable = self.answerable_source_ids(query)
        skipped = tuple(sorted(self.selected - set(answerable)))

        per_source_counts: dict[int, int] = {}
        answers = []
        latency = 0.0
        for sid in answerable:
            source = self.universe.source(sid)
            if source.tuple_ids is None:
                raise ReproError(
                    f"source {source.name!r} has no tuple data; generate "
                    "the workload with keep_tuples=True to execute queries"
                )
            matching = source.tuple_ids[query.mask(source.tuple_ids)]
            per_source_counts[sid] = int(matching.size)
            answers.append(matching)
            latency += self.cost_model.latency_of(source)

        if answers:
            fetched = np.concatenate(answers)
            answer_ids = np.unique(fetched)
        else:
            fetched = np.empty(0, dtype=np.uint64)
            answer_ids = fetched
        cost = QueryCost(
            latency_ms=latency,
            transfer_ms=float(fetched.size)
            * self.cost_model.transfer_ms_per_tuple,
            merge_ms=float(fetched.size) * self.cost_model.merge_ms_per_tuple,
            sources_contacted=len(answerable),
            tuples_fetched=int(fetched.size),
        )
        return QueryResult(
            query=query,
            answer_ids=answer_ids,
            per_source_counts=per_source_counts,
            skipped_source_ids=skipped,
            cost=cost,
        )

    def execute_all(self, queries) -> list[QueryResult]:
        """Execute a batch of queries."""
        return [self.execute(query) for query in queries]


def full_answer_count(universe: Universe, query: Query) -> int:
    """Distinct tuples matching a query across the *whole* universe.

    The ground truth for completeness.  Ignores query interfaces — this is
    what an omniscient system holding every source's data would return.
    """
    answers = []
    for source in universe:
        if source.tuple_ids is None:
            continue
        answers.append(source.tuple_ids[query.mask(source.tuple_ids)])
    if not answers:
        return 0
    return int(np.unique(np.concatenate(answers)).size)
