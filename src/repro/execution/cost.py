"""The query cost model (paper §1's motivation, made measurable).

"There are networking and processing costs associated with including a
data source in the data integration system.  These are the costs to
retrieve data from the source while executing queries, map this data to
the global mediated schema, and resolve any inconsistencies with data
retrieved from other sources.  The more sources we have, the higher these
costs become."

The model is deliberately simple and additive:

* one round-trip *latency* per contacted source (from a configurable
  source characteristic when present, else a constant);
* a *transfer* cost per tuple fetched from a source;
* a *merge* cost per fetched tuple for mapping to the mediated schema and
  deduplicating against the other sources' answers.

Duplicated data is therefore paid for twice — once in transfer and once in
merge — which is exactly why the Redundancy QEF exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import Source
from ..exceptions import ReproError


@dataclass(frozen=True, slots=True)
class CostModel:
    """Per-source and per-tuple simulated costs, in milliseconds."""

    default_latency_ms: float = 150.0
    latency_characteristic: str | None = "latency_ms"
    transfer_ms_per_tuple: float = 0.02
    merge_ms_per_tuple: float = 0.005

    def __post_init__(self) -> None:
        for name in (
            "default_latency_ms", "transfer_ms_per_tuple",
            "merge_ms_per_tuple",
        ):
            if getattr(self, name) < 0:
                raise ReproError(f"{name} must be non-negative")

    def latency_of(self, source: Source) -> float:
        """Round-trip latency for one source."""
        if (
            self.latency_characteristic is not None
            and self.latency_characteristic in source.characteristics
        ):
            return float(
                source.characteristics[self.latency_characteristic]
            )
        return self.default_latency_ms


@dataclass(frozen=True, slots=True)
class QueryCost:
    """Additive cost breakdown of one executed query."""

    latency_ms: float
    transfer_ms: float
    merge_ms: float
    sources_contacted: int
    tuples_fetched: int

    @property
    def total_ms(self) -> float:
        """Total simulated execution cost."""
        return self.latency_ms + self.transfer_ms + self.merge_ms

    def __add__(self, other: "QueryCost") -> "QueryCost":
        return QueryCost(
            latency_ms=self.latency_ms + other.latency_ms,
            transfer_ms=self.transfer_ms + other.transfer_ms,
            merge_ms=self.merge_ms + other.merge_ms,
            sources_contacted=self.sources_contacted
            + other.sources_contacted,
            tuples_fetched=self.tuples_fetched + other.tuples_fetched,
        )


ZERO_COST = QueryCost(0.0, 0.0, 0.0, 0, 0)
