"""Query execution over integration systems (the paper's §1 cost story)."""

from .cost import ZERO_COST, CostModel, QueryCost
from .engine import IntegrationSystem, QueryResult, full_answer_count
from .predicate import (
    Predicate,
    Query,
    QueryWorkloadConfig,
    random_queries,
)

__all__ = [
    "CostModel",
    "IntegrationSystem",
    "Predicate",
    "Query",
    "QueryCost",
    "QueryResult",
    "QueryWorkloadConfig",
    "ZERO_COST",
    "full_answer_count",
    "random_queries",
]
