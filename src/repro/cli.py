"""Command-line interface.

The core subcommands::

    mube demo                    # the paper's theater example, end to end
    mube solve [options]         # solve a Books universe and print the answer
    mube optimizers              # compare all optimizers on one instance
    mube explain [options]       # solve and explain *why* the answer is so
    mube trace-report FILE       # analyse a --trace JSON-lines file offline
    mube runs [show ID]          # list or inspect the persistent run registry
    mube profile [--scale ...]   # per-phase cost profiles and log-log slopes

The CLI is a thin veneer over the :class:`repro.Session` API; everything it
does can be done programmatically (see ``examples/``).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .core import CharacteristicSpec, default_weights
from .search import OPTIMIZERS, OptimizerConfig
from .session import Session, render_history, render_solution
from .telemetry import (
    NOOP,
    JsonLinesExporter,
    StderrSummaryExporter,
    Telemetry,
    use_telemetry,
)
from .workload import generate_books_universe, theater_universe


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``mube`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        telemetry = telemetry_from_args(args)
    except OSError as exc:
        print(f"error: cannot open trace file: {exc}", file=sys.stderr)
        return 2
    try:
        with use_telemetry(telemetry):
            return args.handler(args)
    finally:
        telemetry.close()


def add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--trace`` / ``--stats`` telemetry flags."""
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a JSON-lines span trace (one span per line) to FILE",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print a telemetry summary (span timings, counters) to stderr",
    )


def telemetry_from_args(args: argparse.Namespace) -> Telemetry:
    """A tracer matching the telemetry flags (the shared no-op if absent)."""
    exporters = []
    if getattr(args, "trace", None):
        exporters.append(JsonLinesExporter(args.trace))
    if getattr(args, "stats", False):
        exporters.append(StderrSummaryExporter())
    if not exporters:
        return NOOP
    return Telemetry(exporters=exporters)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="mube",
        description="µBE: user guided source selection and schema mediation",
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="run the theater-tickets demo")
    demo.add_argument("--seed", type=int, default=0)
    add_telemetry_args(demo)
    demo.set_defaults(handler=run_demo)

    solve = sub.add_parser("solve", help="solve a synthetic Books universe")
    solve.add_argument("--sources", type=int, default=200, help="universe size")
    solve.add_argument("--choose", type=int, default=10, help="budget m")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--theta", type=float, default=0.65)
    solve.add_argument(
        "--optimizer", choices=sorted(OPTIMIZERS), default="tabu"
    )
    solve.add_argument("--iterations", type=int, default=60)
    solve.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="run a portfolio of N workers across N processes "
             "(1 = in-process portfolio; default: single sequential solve)",
    )
    solve.add_argument(
        "--portfolio", metavar="SPEC",
        help="portfolio spec like 'tabu:4,local:2,annealing:2' "
             "(default: seeded restarts of --optimizer)",
    )
    solve.add_argument(
        "--stop-quality", type=float, default=None, metavar="Q",
        help="early-stop the portfolio once any worker reaches quality Q",
    )
    solve.add_argument(
        "--checkpoint", metavar="FILE",
        help="write best-so-far snapshots to FILE after every worker; "
             "if FILE already exists, resume the solve from it",
    )
    solve.add_argument(
        "--worker-timeout", type=float, default=None, metavar="SECONDS",
        help="per-worker wall-clock budget; overrunning workers are "
             "recorded as timed out (and retried, with --retries)",
    )
    solve.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-run failed or timed-out workers up to N extra times "
             "(deterministic: a retry re-runs the identical spec)",
    )
    solve.add_argument(
        "--explain", metavar="FILE",
        help="also write a provenance report to FILE "
             "(.json → JSON, .md → markdown, otherwise text)",
    )
    solve.add_argument(
        "--progress", action="store_true",
        help="render a live in-place status line (workers alive/retrying/"
             "timed-out, global best, elapsed) on stderr while solving; "
             "runs the solve through the portfolio engine (observation "
             "only — the answer is bit-identical)",
    )
    add_telemetry_args(solve)
    solve.set_defaults(handler=run_solve)

    explain = sub.add_parser(
        "explain",
        help="solve a Books universe and explain why the answer is what it is",
    )
    explain.add_argument("--sources", type=int, default=60)
    explain.add_argument("--choose", type=int, default=8)
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument("--theta", type=float, default=0.65)
    explain.add_argument(
        "--optimizer", choices=sorted(OPTIMIZERS), default="tabu"
    )
    explain.add_argument("--iterations", type=int, default=40)
    explain.add_argument(
        "--format", choices=["text", "markdown", "json"], default="text"
    )
    explain.add_argument("--out", help="write the report here instead of stdout")
    add_telemetry_args(explain)
    explain.set_defaults(handler=run_explain)

    trace_report = sub.add_parser(
        "trace-report",
        help="reconstruct the span tree and timings from a --trace file",
    )
    trace_report.add_argument("trace_file", help="JSON-lines trace file")
    trace_report.add_argument(
        "--tree", action="store_true", help="also print the span tree"
    )
    trace_report.add_argument(
        "--max-depth", type=int, default=3,
        help="span-tree depth limit (with --tree)",
    )
    trace_report.add_argument(
        "--chrome", metavar="FILE",
        help="also export the span tree as Chrome Trace Event JSON "
             "(open in chrome://tracing or ui.perfetto.dev)",
    )
    trace_report.set_defaults(handler=run_trace_report)

    profile = sub.add_parser(
        "profile",
        help="run the pipeline at increasing scales and fit per-phase "
             "log-log cost slopes",
    )
    profile.add_argument(
        "--scale", default="40,80,160", metavar="N1,N2,...",
        help="comma-separated universe sizes to probe (default 40,80,160)",
    )
    profile.add_argument("--choose", type=int, default=8, help="budget m")
    profile.add_argument("--iterations", type=int, default=30)
    profile.add_argument(
        "--optimizer", choices=sorted(OPTIMIZERS), default="tabu"
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--theta", type=float, default=0.65)
    profile.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="profile the portfolio path with N workers "
             "(default: sequential solve)",
    )
    profile.add_argument(
        "--memory", action="store_true",
        help="also attribute peak/delta heap memory per phase "
             "(tracemalloc; slows the probe noticeably)",
    )
    profile.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the PROFILE_*.json document here "
             "(default: PROFILE_pipeline.json; '-' skips the file)",
    )
    profile.set_defaults(handler=run_profile_cmd)

    runs = sub.add_parser(
        "runs",
        help="list the persistent run registry (.mube/runs.jsonl)",
    )
    runs.add_argument(
        "--path", metavar="FILE",
        help="registry file (default: $MUBE_RUNS_PATH or .mube/runs.jsonl)",
    )
    runs.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="show only the newest N records (default 20; 0 = all)",
    )
    runs.add_argument(
        "--status", choices=["ok", "failed"],
        help="only records with this final status",
    )
    runs.add_argument(
        "--contains", metavar="TEXT", dest="command_filter",
        help="only records whose command contains TEXT",
    )
    runs.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the records as a JSON array instead of a table",
    )
    runs.set_defaults(handler=run_runs)
    runs_sub = runs.add_subparsers(dest="runs_command")
    runs_show = runs_sub.add_parser(
        "show", help="render one run record (per-worker table, counters)"
    )
    runs_show.add_argument(
        "run_id", help="run id, or any unique prefix of one"
    )
    runs_show.add_argument(
        "--path", metavar="FILE",
        help="registry file (default: $MUBE_RUNS_PATH or .mube/runs.jsonl)",
    )
    runs_show.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the record as JSON instead of the rendered report",
    )
    runs_show.set_defaults(handler=run_runs_show)

    compare = sub.add_parser(
        "optimizers", help="compare all optimizers on one instance"
    )
    compare.add_argument("--sources", type=int, default=100)
    compare.add_argument("--choose", type=int, default=10)
    compare.add_argument("--seed", type=int, default=0)
    add_telemetry_args(compare)
    compare.set_defaults(handler=run_optimizers)

    discover = sub.add_parser(
        "discover",
        help="search a mixed multi-domain catalog, then integrate the hits",
    )
    discover.add_argument("query", nargs="+", help="search keywords")
    discover.add_argument("--per-domain", type=int, default=60)
    discover.add_argument("--hits", type=int, default=25)
    discover.add_argument("--choose", type=int, default=8)
    discover.add_argument("--seed", type=int, default=0)
    discover.set_defaults(handler=run_discover)

    query = sub.add_parser(
        "query",
        help="solve a Books universe, then execute queries against it",
    )
    query.add_argument("--sources", type=int, default=80)
    query.add_argument("--choose", type=int, default=8)
    query.add_argument("--queries", type=int, default=6)
    query.add_argument("--seed", type=int, default=0)
    query.set_defaults(handler=run_query)

    interactive = sub.add_parser(
        "interactive",
        help="drive a session with line commands (the Figure-4 UI, in text)",
    )
    interactive.add_argument("--sources", type=int, default=100)
    interactive.add_argument("--choose", type=int, default=8)
    interactive.add_argument("--seed", type=int, default=0)
    interactive.set_defaults(handler=run_interactive)

    catalog = sub.add_parser(
        "catalog",
        help="generate a universe catalog, save/inspect it as JSON",
    )
    catalog.add_argument("--sources", type=int, default=100)
    catalog.add_argument("--seed", type=int, default=0)
    catalog.add_argument(
        "--domain", choices=["books", "airfares", "automobiles"],
        default="books",
    )
    catalog.add_argument("--out", help="write the catalog JSON here")
    catalog.add_argument(
        "--inspect", help="describe an existing catalog JSON instead"
    )
    catalog.set_defaults(handler=run_catalog)

    figures = sub.add_parser(
        "figures",
        help="render a pytest-benchmark JSON report as ASCII figures",
    )
    figures.add_argument("report", help="path to --benchmark-json output")
    figures.set_defaults(handler=run_figures)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived multi-tenant solve service (HTTP)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    serve.add_argument(
        "--port", type=int, default=8765,
        help="bind port, 0 for ephemeral (default %(default)s)",
    )
    serve.add_argument(
        "--universe", action="append", metavar="SPEC",
        help="universe to load at startup: 'books[:N[:SEED]]' or "
             "'theater[:SEED]'; repeatable (default: books:120:0)",
    )
    serve.add_argument(
        "--ttl", type=float, default=1800.0, metavar="SECONDS",
        help="idle session time-to-live (default %(default)ss)",
    )
    serve.add_argument(
        "--max-sessions", type=int, default=256,
        help="hard cap on live sessions (default %(default)s)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1,
        help="default worker count for async solve jobs (default %(default)s)",
    )
    serve.add_argument(
        "--job-dir", default=".mube/jobs",
        help="durable job store: checkpoints + manifests (default %(default)s)",
    )
    add_telemetry_args(serve)
    serve.set_defaults(handler=run_serve)

    return parser


def run_demo(args: argparse.Namespace) -> int:
    """The motivating example: integrate theater-ticket sources."""
    universe = theater_universe(seed=args.seed)
    specs = (
        CharacteristicSpec("latency", "latency_ms", higher_is_better=False),
        CharacteristicSpec("fee", "fee", higher_is_better=False),
    )
    session = Session(
        universe,
        max_sources=6,
        theta=0.5,
        characteristic_qefs=specs,
        optimizer_config=OptimizerConfig(max_iterations=60, seed=args.seed),
    )
    print("== iteration 1: unconstrained ==")
    first = session.solve()
    print(render_solution(first.solution, universe))

    print()
    print("== iteration 2: bridge 'keyword' with 'search term' ==")
    session.require_match(
        [("londontheatre.co.uk", "keyword"), ("canadiantheatre.com", "search term")]
    )
    second = session.solve()
    print(render_solution(second.solution, universe))
    print()
    print(render_history(session.history))
    return 0


def run_solve(args: argparse.Namespace) -> int:
    """Solve one Books instance and print the solution."""
    workload = generate_books_universe(n_sources=args.sources, seed=args.seed)
    spec = CharacteristicSpec("mttf", "mttf")
    session = Session(
        workload.universe,
        max_sources=args.choose,
        theta=args.theta,
        weights=default_weights([spec]),
        characteristic_qefs=[spec],
        optimizer=args.optimizer,
        optimizer_config=OptimizerConfig(
            max_iterations=args.iterations, seed=args.seed
        ),
    )
    printer = None
    if args.progress:
        from .telemetry.observatory import ProgressPrinter

        printer = ProgressPrinter()
    try:
        iteration = session.solve(
            explain=bool(args.explain),
            jobs=args.jobs,
            portfolio=args.portfolio,
            stop_quality=args.stop_quality,
            checkpoint=args.checkpoint,
            worker_timeout=args.worker_timeout,
            retries=args.retries,
            on_progress=printer,
        )
    finally:
        if printer is not None:
            printer.close()
    print(render_solution(iteration.solution, workload.universe))
    stats = iteration.result.stats
    portfolio = iteration.result.portfolio
    label = args.optimizer if portfolio is None else portfolio.winner.label
    print(
        f"\n{label}: {stats.iterations} iterations, "
        f"{stats.evaluations} evaluations, {stats.elapsed_seconds:.2f}s, "
        f"match memo {stats.match_memo_hits}h/{stats.match_memo_misses}m"
    )
    if portfolio is not None:
        from .search.parallel import render_portfolio

        print()
        print(render_portfolio(portfolio))
    if args.explain:
        fmt = _format_for_path(args.explain)
        report = _render_explanation(
            session.explain(), workload.universe, fmt
        )
        with open(args.explain, "w", encoding="utf-8") as stream:
            stream.write(report)
        print(f"wrote {fmt} explanation to {args.explain}")
    if args.trace:
        print(f"wrote span trace to {args.trace}")
    return 0


def run_explain(args: argparse.Namespace) -> int:
    """Solve one Books instance and print the full provenance report."""
    workload = generate_books_universe(n_sources=args.sources, seed=args.seed)
    spec = CharacteristicSpec("mttf", "mttf")
    session = Session(
        workload.universe,
        max_sources=args.choose,
        theta=args.theta,
        weights=default_weights([spec]),
        characteristic_qefs=[spec],
        optimizer=args.optimizer,
        optimizer_config=OptimizerConfig(
            max_iterations=args.iterations, seed=args.seed
        ),
    )
    session.solve(explain=True)
    report = _render_explanation(
        session.explain(), workload.universe, args.format
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as stream:
            stream.write(report)
        print(f"wrote {args.format} explanation to {args.out}")
    else:
        print(report, end="")
    return 0


def run_trace_report(args: argparse.Namespace) -> int:
    """Analyse a ``--trace`` JSON-lines file offline."""
    from .telemetry import render_trace_report

    import json

    try:
        report = render_trace_report(
            args.trace_file, tree=args.tree, max_depth=args.max_depth
        )
    except OSError as exc:
        print(f"error: cannot read trace file: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(
            f"error: {args.trace_file} is not a JSON-lines trace file "
            f"({exc})",
            file=sys.stderr,
        )
        return 2
    print(report, end="")
    if args.chrome:
        from .telemetry.chrome_trace import write_chrome_trace

        try:
            count = write_chrome_trace(args.trace_file, args.chrome)
        except OSError as exc:
            print(
                f"error: cannot write chrome trace: {exc}", file=sys.stderr
            )
            return 2
        print(f"wrote {count} chrome trace events to {args.chrome}")
    return 0


def run_profile_cmd(args: argparse.Namespace) -> int:
    """Run the empirical complexity probe and emit PROFILE_*.json."""
    import json

    from .telemetry.complexity import (
        ProfileConfig,
        render_profile_report,
        run_profile,
    )

    try:
        scales = tuple(
            int(part) for part in args.scale.split(",") if part.strip()
        )
    except ValueError:
        print(
            f"error: --scale wants comma-separated integers, "
            f"got {args.scale!r}",
            file=sys.stderr,
        )
        return 2
    if not scales or any(s < 2 for s in scales):
        print(
            "error: --scale needs at least one universe size ≥ 2",
            file=sys.stderr,
        )
        return 2
    config = ProfileConfig(
        scales=scales,
        choose=args.choose,
        iterations=args.iterations,
        optimizer=args.optimizer,
        seed=args.seed,
        theta=args.theta,
        jobs=args.jobs,
        memory=args.memory,
    )
    document = run_profile(config)
    print(render_profile_report(document), end="")
    out = args.out if args.out is not None else "PROFILE_pipeline.json"
    if out != "-":
        try:
            with open(out, "w", encoding="utf-8") as stream:
                json.dump(document, stream, indent=1, sort_keys=True)
                stream.write("\n")
        except OSError as exc:
            print(
                f"error: cannot write profile report: {exc}",
                file=sys.stderr,
            )
            return 2
        print(f"\nwrote profile document to {out}")
    return 0


def _registry_for_args(args: argparse.Namespace):
    """The run registry named by ``--path`` / env / the default location."""
    import os

    from .telemetry.observatory import (
        DEFAULT_RUNS_PATH,
        RUNS_PATH_ENV,
        RunRegistry,
    )

    path = (
        getattr(args, "path", None)
        or os.environ.get(RUNS_PATH_ENV)
        or DEFAULT_RUNS_PATH
    )
    return RunRegistry(path)


def run_runs(args: argparse.Namespace) -> int:
    """List the run registry, newest last."""
    from .telemetry.observatory import render_runs_table

    registry = _registry_for_args(args)
    records = registry.load(
        limit=args.limit if args.limit else None,
        status=args.status,
        command=args.command_filter,
    )
    if args.as_json:
        import json

        print(json.dumps([r.to_dict() for r in records], indent=2))
        return 0
    if not records and not registry.path.exists():
        print(f"no run registry at {registry.path} (nothing recorded yet)")
        return 0
    print(render_runs_table(records))
    if registry.skipped_lines:
        print(
            f"({registry.skipped_lines} malformed line(s) skipped)",
            file=sys.stderr,
        )
    return 0


def run_runs_show(args: argparse.Namespace) -> int:
    """Render one run record in full."""
    from .telemetry.observatory import render_run_record

    registry = _registry_for_args(args)
    record = registry.find(args.run_id)
    if record is None:
        print(
            f"error: no run matching {args.run_id!r} in {registry.path}",
            file=sys.stderr,
        )
        return 1
    if args.as_json:
        import json

        print(json.dumps(record.to_dict(), indent=2))
        return 0
    print(render_run_record(record))
    return 0


def _format_for_path(path: str) -> str:
    """Report format implied by a ``--explain FILE`` suffix."""
    if path.endswith(".json"):
        return "json"
    if path.endswith(".md"):
        return "markdown"
    return "text"


def _render_explanation(explanation, universe, fmt: str) -> str:
    from .explain import (
        render_explanation_json,
        render_explanation_markdown,
        render_explanation_text,
    )

    if fmt == "json":
        return render_explanation_json(explanation)
    if fmt == "markdown":
        return render_explanation_markdown(explanation, universe)
    return render_explanation_text(explanation, universe)


def run_optimizers(args: argparse.Namespace) -> int:
    """Run every optimizer on the same instance and print a table."""
    workload = generate_books_universe(n_sources=args.sources, seed=args.seed)
    spec = CharacteristicSpec("mttf", "mttf")
    print(f"{'optimizer':<12} {'Q':>8} {'evals':>7} {'seconds':>8}")
    for name in sorted(OPTIMIZERS):
        if name == "exhaustive":
            continue  # intractable at CLI scales
        session = Session(
            workload.universe,
            max_sources=args.choose,
            weights=default_weights([spec]),
            characteristic_qefs=[spec],
            optimizer=name,
            optimizer_config=OptimizerConfig(
                max_iterations=60, seed=args.seed
            ),
        )
        iteration = session.solve()
        stats = iteration.result.stats
        print(
            f"{name:<12} {iteration.solution.quality:>8.4f} "
            f"{stats.evaluations:>7} {stats.elapsed_seconds:>8.2f}"
        )
    return 0


def run_discover(args: argparse.Namespace) -> int:
    """Discovery → integration over a mixed catalog (paper §1 workflow)."""
    from collections import Counter

    from .workload import SourceSearchEngine, build_catalog

    catalog = build_catalog(
        sources_per_domain=args.per_domain, seed=args.seed
    )
    engine = SourceSearchEngine(catalog.universe)
    query = " ".join(args.query)
    hits = engine.search(query, limit=args.hits)
    if not hits:
        print(f"no sources match {query!r}")
        return 1
    domains = Counter(catalog.domain_of[hit.source_id] for hit in hits)
    print(
        f"{len(hits)} hits for {query!r} across "
        f"{len(catalog.universe)} sources — by domain: {dict(domains)}"
    )
    universe = engine.subuniverse(query, limit=args.hits)
    session = Session(
        universe,
        max_sources=min(args.choose, len(universe)),
        optimizer_config=OptimizerConfig(max_iterations=40, seed=args.seed),
    )
    iteration = session.solve()
    print()
    print(render_solution(iteration.solution, universe))
    picked = Counter(
        catalog.domain_of[sid] for sid in iteration.solution.selected
    )
    print(f"\nselected sources by domain: {dict(picked)}")
    return 0


def run_query(args: argparse.Namespace) -> int:
    """Solve, build the integration system, and execute queries."""
    from .execution import (
        IntegrationSystem,
        QueryWorkloadConfig,
        full_answer_count,
        random_queries,
    )
    from .workload import DataConfig

    workload = generate_books_universe(
        n_sources=args.sources,
        seed=args.seed,
        data_config=DataConfig(
            pool_size=100_000, min_cardinality=500, max_cardinality=20_000
        ),
        keep_tuples=True,
    )
    session = Session(
        workload.universe,
        max_sources=args.choose,
        optimizer_config=OptimizerConfig(max_iterations=40, seed=args.seed),
    )
    solution = session.solve().solution
    print(render_solution(solution, workload.universe))
    system = IntegrationSystem.from_solution(workload.universe, solution)
    queries = random_queries(
        solution.schema, args.queries, QueryWorkloadConfig(seed=args.seed)
    )
    print(f"\n{'query':<40} {'answer':>7} {'dup%':>6} {'complete':>9} "
          f"{'cost':>8}")
    for query in queries:
        result = system.execute(query)
        full = full_answer_count(workload.universe, query)
        print(
            f"{query.describe():<40} {result.answer_count:>7} "
            f"{result.duplicate_ratio:>6.1%} "
            f"{result.completeness_against(full):>8.0%} "
            f"{result.cost.total_ms:>6.0f}ms"
        )
    return 0


def run_catalog(args: argparse.Namespace) -> int:
    """Generate/save or inspect a universe catalog."""
    from .io import load_universe, save_universe
    from .workload import describe_universe, generate_universe, get_domain
    from .workload import render_stats

    if args.inspect:
        universe = load_universe(args.inspect)
        print(render_stats(describe_universe(universe)))
        return 0
    workload = generate_universe(
        domain=get_domain(args.domain),
        n_sources=args.sources,
        seed=args.seed,
    )
    print(render_stats(describe_universe(workload.universe)))
    if args.out:
        save_universe(workload.universe, args.out)
        print(f"\nwrote {args.out}")
    return 0


def run_figures(args: argparse.Namespace) -> int:
    """Render benchmark JSON as the paper's figures in ASCII."""
    from .analysis import render_figures

    print(render_figures(args.report))
    return 0


def run_interactive(args: argparse.Namespace) -> int:
    """Start the interactive console over a Books universe."""
    from .session import interactive_loop

    workload = generate_books_universe(
        n_sources=args.sources, seed=args.seed
    )
    spec = CharacteristicSpec("mttf", "mttf")
    session = Session(
        workload.universe,
        max_sources=args.choose,
        weights=default_weights([spec]),
        characteristic_qefs=[spec],
        optimizer_config=OptimizerConfig(max_iterations=40, seed=args.seed),
    )
    interactive_loop(session)
    return 0


def run_serve(args: argparse.Namespace) -> int:
    """Run the resident multi-tenant solve service until SIGINT/SIGTERM."""
    import signal
    import threading

    from .serve import ServeApp, ServeHTTPServer, load_universe

    universes = {}
    for spec in args.universe or ["books:120:0"]:
        resident = load_universe(spec)
        universes[resident.name] = resident
        print(
            f"mube serve: loaded universe {resident.name} "
            f"({len(resident.universe)} sources, "
            f"{len(resident.universe.attribute_names())} attributes)",
            flush=True,
        )
    app = ServeApp(
        universes,
        job_dir=args.job_dir,
        ttl_seconds=args.ttl,
        max_sessions=args.max_sessions,
        default_jobs=args.jobs,
    )
    with app:
        server = ServeHTTPServer((args.host, args.port), app)
        host, port = server.server_address[:2]
        degraded = [tier for tier, ok in app.tiers.items() if not ok]
        if degraded:
            print(
                f"mube serve: degraded tiers: {', '.join(sorted(degraded))}",
                flush=True,
            )
        print(f"mube serve: listening on http://{host}:{port}", flush=True)

        def _stop(signum, frame):  # noqa: ARG001 - signal handler shape
            # shutdown() must come from another thread: serve_forever's
            # poll loop is the one being interrupted.
            threading.Thread(target=server.shutdown, daemon=True).start()

        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
        try:
            server.serve_forever()
        finally:
            server.server_close()
    print("mube serve: shutdown complete", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
