"""Random search — the sanity-check floor every metaheuristic must beat."""

from __future__ import annotations

from ..quality.overall import Objective
from .base import (
    Optimizer,
    OptimizerConfig,
    RunClock,
    SearchResult,
    SearchStats,
    random_selection,
)

#: Selections generated per batch-scoring call; the wall clock is checked
#: between chunks rather than between single evaluations.
_CHUNK = 64


class RandomSearch(Optimizer):
    """Evaluate independent random feasible selections; keep the best."""

    name = "random"

    def __init__(self, config: OptimizerConfig | None = None):
        super().__init__(config)

    def _optimize(
        self,
        objective: Objective,
        initial: frozenset[int] | None = None,
    ) -> SearchResult:
        del initial  # stateless by design
        rng = self._rng()
        clock = RunClock(self.config.time_limit)
        best = self._score(
            objective, [random_selection(objective, rng)]
        )[0]
        best_found_at = 0
        trajectory = [best.objective]
        iterations = 0
        # The RNG is consumed only by selection generation, so chunked
        # pre-generation leaves the sampled sequence — and therefore the
        # trajectory — identical to one-at-a-time evaluation.
        while iterations < self.config.max_iterations and not clock.expired():
            chunk = min(_CHUNK, self.config.max_iterations - iterations)
            selections = [
                random_selection(objective, rng) for _ in range(chunk)
            ]
            for solution in self._score(objective, selections):
                iterations += 1
                if solution.objective > best.objective:
                    best = solution
                    best_found_at = iterations
                trajectory.append(best.objective)
        stats = SearchStats(
            iterations=iterations,
            evaluations=objective.evaluations,
            elapsed_seconds=clock.elapsed(),
            best_found_at=best_found_at,
        )
        return SearchResult(best, stats, tuple(trajectory))
