"""Random search — the sanity-check floor every metaheuristic must beat."""

from __future__ import annotations

from ..quality.overall import Objective
from .base import (
    Optimizer,
    OptimizerConfig,
    RunClock,
    SearchResult,
    SearchStats,
    random_selection,
)


class RandomSearch(Optimizer):
    """Evaluate independent random feasible selections; keep the best."""

    name = "random"

    def __init__(self, config: OptimizerConfig | None = None):
        super().__init__(config)

    def _optimize(
        self,
        objective: Objective,
        initial: frozenset[int] | None = None,
    ) -> SearchResult:
        del initial  # stateless by design
        rng = self._rng()
        clock = RunClock(self.config.time_limit)
        best = objective.evaluate(random_selection(objective, rng))
        best_found_at = 0
        trajectory = [best.objective]
        iterations = 0
        for iteration in range(1, self.config.max_iterations + 1):
            if clock.expired():
                break
            iterations = iteration
            solution = objective.evaluate(random_selection(objective, rng))
            if solution.objective > best.objective:
                best = solution
                best_found_at = iteration
            trajectory.append(best.objective)
        stats = SearchStats(
            iterations=iterations,
            evaluations=objective.evaluations,
            elapsed_seconds=clock.elapsed(),
            best_found_at=best_found_at,
        )
        return SearchResult(best, stats, tuple(trajectory))
