"""Exhaustive enumeration — exact optima for small instances.

Used in tests and ablations to measure how close the metaheuristics get to
the true optimum.  Refuses instances whose search space exceeds
``max_subsets`` rather than silently running forever.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

from ..core import worst_solution
from ..exceptions import SearchError
from ..quality.overall import Objective
from .base import (
    Optimizer,
    OptimizerConfig,
    RunClock,
    SearchResult,
    SearchStats,
    free_ids,
    required_ids,
)


class ExhaustiveSearch(Optimizer):
    """Enumerate every selection with ``C ⊆ S`` and ``|S| ≤ m``."""

    name = "exhaustive"

    def __init__(
        self,
        config: OptimizerConfig | None = None,
        max_subsets: int = 200_000,
    ):
        super().__init__(config)
        self.max_subsets = max_subsets

    def _optimize(
        self,
        objective: Objective,
        initial: frozenset[int] | None = None,
    ) -> SearchResult:
        del initial  # enumeration needs no start state
        clock = RunClock(self.config.time_limit)
        problem = objective.problem
        required = required_ids(objective)
        pool = free_ids(objective)
        budget = problem.max_sources

        total = self._count_subsets(len(pool), len(required), budget)
        if total > self.max_subsets:
            raise SearchError(
                f"exhaustive search over {total} subsets exceeds the "
                f"limit of {self.max_subsets}"
            )

        best = worst_solution()
        best_found_at = 0
        evaluated = 0
        min_free = 0 if required else 1
        for size in range(min_free, budget - len(required) + 1):
            for extra in combinations(pool, size):
                if clock.expired():
                    break
                evaluated += 1
                solution = objective.evaluate(required | frozenset(extra))
                if solution.objective > best.objective:
                    best = solution
                    best_found_at = evaluated
        if required and best.objective == float("-inf"):
            best = objective.evaluate(required)

        stats = SearchStats(
            iterations=evaluated,
            evaluations=objective.evaluations,
            elapsed_seconds=clock.elapsed(),
            best_found_at=best_found_at,
        )
        return SearchResult(best, stats, ())

    @staticmethod
    def _count_subsets(pool: int, required: int, budget: int) -> int:
        lowest = 0 if required else 1
        return sum(
            comb(pool, size)
            for size in range(lowest, max(budget - required, lowest - 1) + 1)
        )
