"""Neighborhood moves over source selections.

A *move* transforms one selection into another while preserving the
structural constraints: constrained sources are never dropped, the budget
``m`` is never exceeded, and the selection never becomes empty.  Three move
kinds are supported — ADD, DROP and SWAP — and the generator can sample the
(large) ADD side so a single optimizer iteration stays affordable on
universes with hundreds of sources.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from enum import Enum

import numpy as np


class MoveKind(Enum):
    """The three structural move types."""

    ADD = "add"
    DROP = "drop"
    SWAP = "swap"


@dataclass(frozen=True, slots=True)
class Move:
    """One candidate transition between selections."""

    kind: MoveKind
    added: int | None = None
    dropped: int | None = None

    def apply(self, selection: frozenset[int]) -> frozenset[int]:
        """The selection this move leads to."""
        result = set(selection)
        if self.dropped is not None:
            result.discard(self.dropped)
        if self.added is not None:
            result.add(self.added)
        return frozenset(result)

    def touched(self) -> tuple[int, ...]:
        """The source ids the move manipulates (for tabu bookkeeping)."""
        out = []
        if self.added is not None:
            out.append(self.added)
        if self.dropped is not None:
            out.append(self.dropped)
        return tuple(out)


class Neighborhood:
    """Generates legal moves around a selection."""

    def __init__(
        self,
        universe_ids: frozenset[int],
        required: frozenset[int],
        max_sources: int,
        sample_size: int = 0,
        include_swaps: bool = False,
    ):
        self.universe_ids = universe_ids
        self.required = required
        self.max_sources = max_sources
        self.sample_size = sample_size
        self.include_swaps = include_swaps
        self._min_size = max(1, len(required))

    def droppable(self, selection: frozenset[int]) -> tuple[int, ...]:
        """Sources that may be removed from the selection."""
        if len(selection) <= self._min_size:
            return ()
        return tuple(sorted(selection - self.required))

    def addable(self, selection: frozenset[int]) -> tuple[int, ...]:
        """Sources that may be added to the selection."""
        if len(selection) >= self.max_sources:
            return ()
        return tuple(sorted(self.universe_ids - selection))

    def moves(
        self, selection: frozenset[int], rng: np.random.Generator
    ) -> Iterator[Move]:
        """Yield candidate moves, sampling the ADD/SWAP side if configured."""
        for sid in self.droppable(selection):
            yield Move(MoveKind.DROP, dropped=sid)
        additions = self._sampled_additions(selection, rng)
        for sid in additions:
            yield Move(MoveKind.ADD, added=sid)
        if self.include_swaps:
            drops = self.droppable(selection)
            # At the budget boundary ADD is impossible, so swaps are what
            # keeps a full selection mobile.
            swap_ins = (
                additions
                if additions
                else self._sampled_outside(selection, rng)
            )
            for out_id in drops:
                for in_id in swap_ins:
                    yield Move(MoveKind.SWAP, added=in_id, dropped=out_id)

    def move_batch(
        self, selection: frozenset[int], rng: np.random.Generator
    ) -> list[tuple[Move, frozenset[int]]]:
        """All candidate (move, resulting selection) pairs, materialized.

        The batch-scoring entry point: the generator is drained in its
        native order (consuming the RNG exactly as :meth:`moves` does), and
        identity transitions are filtered so every candidate is a genuine
        neighbor.
        """
        batch: list[tuple[Move, frozenset[int]]] = []
        for move in self.moves(selection, rng):
            candidate = move.apply(selection)
            if candidate != selection:
                batch.append((move, candidate))
        return batch

    def random_move(
        self, selection: frozenset[int], rng: np.random.Generator
    ) -> Move | None:
        """A single uniformly chosen legal move (used by annealing/SLS)."""
        kinds: list[MoveKind] = []
        drops = self.droppable(selection)
        adds = self.addable(selection)
        outside = tuple(sorted(self.universe_ids - selection))
        if drops:
            kinds.append(MoveKind.DROP)
        if adds:
            kinds.append(MoveKind.ADD)
        if drops and outside:
            kinds.append(MoveKind.SWAP)
        if not kinds:
            return None
        kind = kinds[int(rng.integers(len(kinds)))]
        if kind is MoveKind.DROP:
            return Move(MoveKind.DROP, dropped=_pick(drops, rng))
        if kind is MoveKind.ADD:
            return Move(MoveKind.ADD, added=_pick(adds, rng))
        return Move(
            MoveKind.SWAP,
            added=_pick(outside, rng),
            dropped=_pick(drops, rng),
        )

    # -- internals ----------------------------------------------------------

    def _sampled_additions(
        self, selection: frozenset[int], rng: np.random.Generator
    ) -> tuple[int, ...]:
        additions = self.addable(selection)
        return self._sample(additions, rng)

    def _sampled_outside(
        self, selection: frozenset[int], rng: np.random.Generator
    ) -> tuple[int, ...]:
        outside = tuple(sorted(self.universe_ids - selection))
        return self._sample(outside, rng)

    def _sample(
        self, candidates: tuple[int, ...], rng: np.random.Generator
    ) -> tuple[int, ...]:
        if not self.sample_size or len(candidates) <= self.sample_size:
            return candidates
        chosen = rng.choice(len(candidates), size=self.sample_size, replace=False)
        return tuple(candidates[i] for i in sorted(chosen))


def _pick(candidates: tuple[int, ...], rng: np.random.Generator) -> int:
    return candidates[int(rng.integers(len(candidates)))]
