"""Tabu search — µBE's default optimizer (paper §6).

Classic add/drop tabu search over source subsets.  Each iteration evaluates
every legal DROP and a sample of legal ADDs, then makes the best admissible
move even if it worsens the current selection — that is what lets the
search cross valleys.  A move is *tabu* while any source it touches is on
the tabu list: dropping a source forbids re-adding it for ``tenure``
iterations and vice versa, which is the short-term memory that prevents
cycling.  The aspiration criterion overrides the list whenever a move would
beat the best solution seen so far.

The user's constraints are permanently tabu regions: constrained sources
are simply never droppable and over-budget selections are never generated
(see :mod:`repro.search.neighborhood`).
"""

from __future__ import annotations

import math

from ..core import Solution
from ..explain.events import (
    MoveAccepted,
    MoveTabuRejected,
    NewBest,
    get_event_log,
)
from ..quality.overall import Objective
from ..telemetry import get_telemetry
from .base import (
    Optimizer,
    OptimizerConfig,
    RunClock,
    SearchResult,
    SearchStats,
    required_ids,
)
from .neighborhood import Move, Neighborhood


class TabuSearch(Optimizer):
    """Tabu search with recency-based memory and aspiration."""

    name = "tabu"

    def __init__(
        self,
        config: OptimizerConfig | None = None,
        tenure: int | None = None,
    ):
        super().__init__(config)
        self.tenure = tenure

    def _optimize(
        self,
        objective: Objective,
        initial: frozenset[int] | None = None,
    ) -> SearchResult:
        rng = self._rng()
        clock = RunClock(self.config.time_limit)
        problem = objective.problem
        tenure = self.tenure or default_tenure(len(problem.universe))
        neighborhood = Neighborhood(
            problem.universe.source_ids,
            required_ids(objective),
            problem.max_sources,
            sample_size=self.config.sample_size,
        )

        telemetry = get_telemetry()
        log = get_event_log()
        improved_counter = telemetry.metrics.counter("tabu.moves.improving")
        worsened_counter = telemetry.metrics.counter("tabu.moves.worsening")

        current = self._start_selection(objective, initial, rng)
        best = objective.evaluate(current)
        best_found_at = 0
        tabu_until: dict[int, int] = {}
        trajectory = [best.objective]
        iterations = 0
        stale = 0

        for iteration in range(1, self.config.max_iterations + 1):
            if clock.expired() or stale >= self.config.patience:
                break
            iterations = iteration
            with telemetry.span("search.iteration", n=iteration):
                chosen = self._best_admissible(
                    objective, neighborhood, current, tabu_until, iteration,
                    best, rng,
                )
            if chosen is None:
                break
            move, solution, aspiration = chosen
            current = solution.selected
            for touched in move.touched():
                tabu_until[touched] = iteration + tenure
            improving = solution.objective > best.objective
            if log.enabled:
                log.emit(
                    MoveAccepted(
                        iteration=iteration,
                        move=move.kind.value,
                        added=move.added,
                        dropped=move.dropped,
                        objective=solution.objective,
                        improving=improving,
                        aspiration=aspiration,
                    )
                )
            if improving:
                best = solution
                best_found_at = iteration
                stale = 0
                improved_counter.inc()
                if log.enabled:
                    log.emit(
                        NewBest(
                            iteration=iteration,
                            objective=solution.objective,
                            quality=solution.quality,
                            selected=tuple(sorted(solution.selected)),
                        )
                    )
            else:
                stale += 1
                worsened_counter.inc()
            trajectory.append(best.objective)

        stats = SearchStats(
            iterations=iterations,
            evaluations=objective.evaluations,
            elapsed_seconds=clock.elapsed(),
            best_found_at=best_found_at,
        )
        return SearchResult(best, stats, tuple(trajectory))

    def _best_admissible(
        self,
        objective: Objective,
        neighborhood: Neighborhood,
        current: frozenset[int],
        tabu_until: dict[int, int],
        iteration: int,
        best: Solution,
        rng,
    ) -> tuple[Move, Solution, bool] | None:
        log = get_event_log()
        chosen: tuple[Move, Solution, bool] | None = None
        chosen_objective = -math.inf
        tabu_rejected = 0
        # Materialize the whole neighborhood, score it in one batch call,
        # then run the tabu/aspiration selection over the scored pairs in
        # generation order — the same argmax the scalar loop computed.
        batch = neighborhood.move_batch(current, rng)
        solutions = self._score(
            objective, [candidate for _, candidate in batch]
        )
        evaluated = len(batch)
        for (move, _), solution in zip(batch, solutions):
            is_tabu = any(
                tabu_until.get(t, 0) >= iteration for t in move.touched()
            )
            if is_tabu and solution.objective <= best.objective:
                tabu_rejected += 1
                if log.enabled:
                    log.emit(
                        MoveTabuRejected(
                            iteration=iteration,
                            move=move.kind.value,
                            added=move.added,
                            dropped=move.dropped,
                            objective=solution.objective,
                        )
                    )
                continue
            if solution.objective > chosen_objective:
                # A tabu move only reaches this point via aspiration.
                chosen = (move, solution, is_tabu)
                chosen_objective = solution.objective
        metrics = get_telemetry().metrics
        metrics.counter("tabu.moves.evaluated").inc(evaluated)
        metrics.counter("tabu.moves.tabu_rejected").inc(tabu_rejected)
        if chosen is not None:
            metrics.counter("tabu.moves.accepted").inc()
        return chosen


def default_tenure(universe_size: int) -> int:
    """Recency tenure scaled to the universe: ``max(5, √|U|)``."""
    return max(5, round(math.sqrt(universe_size)))
