"""Combinatorial optimizers for the µBE source-selection problem (paper §6)."""

from ..exceptions import SearchError
from .annealing import SimulatedAnnealing
from .base import (
    Optimizer,
    OptimizerConfig,
    SearchResult,
    SearchStats,
    best_of,
    free_ids,
    random_selection,
    required_ids,
    score_candidates,
)
from .exhaustive import ExhaustiveSearch
from .greedy_select import GreedySelector
from .local_search import StochasticLocalSearch
from .neighborhood import Move, MoveKind, Neighborhood
from .parallel import (
    ParallelSolveEngine,
    PortfolioStats,
    WorkerContext,
    WorkerOutcome,
    WorkerSpec,
    parse_portfolio,
    render_portfolio,
    resolve_portfolio,
    seeded_restarts,
)
from .pso import ParticleSwarm
from .random_search import RandomSearch
from .tabu import TabuSearch, default_tenure

#: Optimizer classes by registry name.
OPTIMIZERS: dict[str, type[Optimizer]] = {
    cls.name: cls
    for cls in (
        TabuSearch,
        SimulatedAnnealing,
        StochasticLocalSearch,
        ParticleSwarm,
        GreedySelector,
        RandomSearch,
        ExhaustiveSearch,
    )
}


def get_optimizer(
    name: str, config: OptimizerConfig | None = None
) -> Optimizer:
    """Instantiate an optimizer by registry name.

    Raises
    ------
    SearchError
        If the name is unknown.
    """
    try:
        cls = OPTIMIZERS[name]
    except KeyError:
        raise SearchError(
            f"unknown optimizer {name!r}; "
            f"available: {', '.join(sorted(OPTIMIZERS))}"
        ) from None
    return cls(config)


__all__ = [
    "ExhaustiveSearch",
    "GreedySelector",
    "Move",
    "MoveKind",
    "Neighborhood",
    "OPTIMIZERS",
    "Optimizer",
    "OptimizerConfig",
    "ParallelSolveEngine",
    "ParticleSwarm",
    "PortfolioStats",
    "RandomSearch",
    "SearchResult",
    "SearchStats",
    "SimulatedAnnealing",
    "StochasticLocalSearch",
    "TabuSearch",
    "WorkerContext",
    "WorkerOutcome",
    "WorkerSpec",
    "best_of",
    "default_tenure",
    "free_ids",
    "get_optimizer",
    "parse_portfolio",
    "random_selection",
    "render_portfolio",
    "required_ids",
    "resolve_portfolio",
    "score_candidates",
    "seeded_restarts",
]
