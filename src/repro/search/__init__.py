"""Combinatorial optimizers for the µBE source-selection problem (paper §6)."""

from ..exceptions import SearchError
from .annealing import SimulatedAnnealing
from .base import (
    Optimizer,
    OptimizerConfig,
    SearchResult,
    SearchStats,
    best_of,
    free_ids,
    random_selection,
    required_ids,
    score_candidates,
    stop_check_scope,
)
from .exhaustive import ExhaustiveSearch
from .greedy_select import GreedySelector
from .local_search import StochasticLocalSearch
from .neighborhood import Move, MoveKind, Neighborhood
from .parallel import (
    ParallelSolveEngine,
    PortfolioStats,
    WorkerContext,
    WorkerOutcome,
    WorkerSpec,
    parse_portfolio,
    render_portfolio,
    resolve_portfolio,
    seeded_restarts,
)
from .pso import ParticleSwarm
from .random_search import RandomSearch
from .resilience import (
    ATTEMPT_PARAM,
    Checkpoint,
    ResilienceConfig,
    RetryPolicy,
    WorkerProgress,
    derive_worker_seed,
    load_checkpoint,
    problem_fingerprint,
    write_checkpoint,
)
from .tabu import TabuSearch, default_tenure

#: Optimizer classes by registry name.
OPTIMIZERS: dict[str, type[Optimizer]] = {
    cls.name: cls
    for cls in (
        TabuSearch,
        SimulatedAnnealing,
        StochasticLocalSearch,
        ParticleSwarm,
        GreedySelector,
        RandomSearch,
        ExhaustiveSearch,
    )
}


def get_optimizer(
    name: str, config: OptimizerConfig | None = None
) -> Optimizer:
    """Instantiate an optimizer by registry name.

    Raises
    ------
    SearchError
        If the name is unknown.
    """
    try:
        cls = OPTIMIZERS[name]
    except KeyError:
        raise SearchError(
            f"unknown optimizer {name!r}; "
            f"available: {', '.join(sorted(OPTIMIZERS))}"
        ) from None
    return cls(config)


def resolve_optimizer_class(name: str) -> type[Optimizer]:
    """Resolve an optimizer class from a registry name or a dotted path.

    ``name`` is either a registry key (``"tabu"``) or a
    ``"module.path:ClassName"`` reference to an :class:`Optimizer`
    subclass.  The dotted form is resolved by importing the module on
    demand, which makes it work in ``spawn``-started worker processes
    where runtime registry mutations in the parent are invisible — the
    fault-injection harness (:mod:`repro.testing.faults`) depends on
    this.

    Raises
    ------
    SearchError
        If the name is unknown, the module cannot be imported, or the
        attribute is not an :class:`Optimizer` subclass.
    """
    if ":" not in name:
        try:
            return OPTIMIZERS[name]
        except KeyError:
            raise SearchError(
                f"unknown optimizer {name!r}; "
                f"available: {', '.join(sorted(OPTIMIZERS))}"
            ) from None
    import importlib

    module_name, _, attribute = name.partition(":")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SearchError(
            f"cannot import optimizer module {module_name!r}: {exc}"
        ) from exc
    try:
        cls = getattr(module, attribute)
    except AttributeError:
        raise SearchError(
            f"module {module_name!r} has no attribute {attribute!r}"
        ) from None
    if not (isinstance(cls, type) and issubclass(cls, Optimizer)):
        raise SearchError(
            f"{name!r} does not name an Optimizer subclass"
        )
    return cls


__all__ = [
    "ATTEMPT_PARAM",
    "Checkpoint",
    "ExhaustiveSearch",
    "GreedySelector",
    "Move",
    "MoveKind",
    "Neighborhood",
    "OPTIMIZERS",
    "Optimizer",
    "OptimizerConfig",
    "ParallelSolveEngine",
    "ParticleSwarm",
    "PortfolioStats",
    "RandomSearch",
    "ResilienceConfig",
    "RetryPolicy",
    "SearchResult",
    "SearchStats",
    "SimulatedAnnealing",
    "StochasticLocalSearch",
    "TabuSearch",
    "WorkerContext",
    "WorkerOutcome",
    "WorkerProgress",
    "WorkerSpec",
    "best_of",
    "default_tenure",
    "derive_worker_seed",
    "free_ids",
    "get_optimizer",
    "load_checkpoint",
    "parse_portfolio",
    "problem_fingerprint",
    "random_selection",
    "render_portfolio",
    "required_ids",
    "resolve_optimizer_class",
    "resolve_portfolio",
    "score_candidates",
    "seeded_restarts",
    "stop_check_scope",
    "write_checkpoint",
]
