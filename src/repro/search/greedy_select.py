"""Greedy construction — a deterministic, cheap baseline.

Starts from the constrained sources and repeatedly adds the sampled
candidate that maximizes the objective until the budget ``m`` is reached,
then returns the best prefix seen (adding can hurt, e.g. through
redundancy, so the best selection is not necessarily the full one).
"""

from __future__ import annotations

from ..quality.overall import Objective
from .base import (
    Optimizer,
    OptimizerConfig,
    RunClock,
    SearchResult,
    SearchStats,
    free_ids,
    required_ids,
)


class GreedySelector(Optimizer):
    """Best-first greedy subset construction."""

    name = "greedy"

    def __init__(self, config: OptimizerConfig | None = None):
        super().__init__(config)

    def _optimize(
        self,
        objective: Objective,
        initial: frozenset[int] | None = None,
    ) -> SearchResult:
        rng = self._rng()
        clock = RunClock(self.config.time_limit)
        problem = objective.problem
        budget = problem.max_sources
        selection = set(required_ids(objective))
        if initial is not None:
            selection = set(self._start_selection(objective, initial, rng))
        pool = [sid for sid in free_ids(objective) if sid not in selection]

        if selection:
            best = objective.evaluate(frozenset(selection))
        else:
            # Seed with the best sampled single source.
            candidates = self._sample(pool, rng)
            singles = self._score(
                objective, [frozenset({sid}) for sid in candidates]
            )
            best = max(singles, key=lambda s: s.objective)
            selection = set(best.selected)
            pool = [sid for sid in pool if sid not in selection]

        best_found_at = 0
        trajectory = [best.objective]
        steps = 0

        while len(selection) < budget and pool and not clock.expired():
            steps += 1
            candidates = self._sample(pool, rng)
            solutions = self._score(
                objective,
                [frozenset(selection | {sid}) for sid in candidates],
            )
            step_best = None
            step_best_sid = None
            for sid, solution in zip(candidates, solutions):
                if step_best is None or solution.objective > step_best.objective:
                    step_best = solution
                    step_best_sid = sid
            if step_best is None:
                break
            selection.add(step_best_sid)
            pool.remove(step_best_sid)
            if step_best.objective > best.objective:
                best = step_best
                best_found_at = steps
            trajectory.append(best.objective)

        stats = SearchStats(
            iterations=steps,
            evaluations=objective.evaluations,
            elapsed_seconds=clock.elapsed(),
            best_found_at=best_found_at,
        )
        return SearchResult(best, stats, tuple(trajectory))

    def _sample(self, pool: list[int], rng) -> list[int]:
        size = self.config.sample_size
        if not size or len(pool) <= size:
            return list(pool)
        chosen = rng.choice(len(pool), size=size, replace=False)
        return [pool[i] for i in sorted(chosen)]
