"""Binary particle swarm optimization — the paper's third rejected baseline.

Each particle carries a real-valued velocity per source; a sigmoid of the
velocity gives the probability that the source is selected.  After the
standard velocity update toward the particle's personal best and the
swarm's global best, the sampled position is *repaired* to the constraint
region: constrained sources are forced in and, if the budget overflows, the
lowest-probability free sources are evicted.

The swarm updates *synchronously*: all particles move against the previous
iteration's global best, the new positions are scored as one batch, and
only then do the personal/global bests advance — which is what lets the
whole swarm ride the objective's columnar batch evaluator.
"""

from __future__ import annotations

import numpy as np

from ..quality.overall import Objective
from .base import (
    Optimizer,
    OptimizerConfig,
    RunClock,
    SearchResult,
    SearchStats,
    required_ids,
)


class ParticleSwarm(Optimizer):
    """Discrete (binary) PSO with constraint repair."""

    name = "pso"

    def __init__(
        self,
        config: OptimizerConfig | None = None,
        particles: int = 16,
        inertia: float = 0.72,
        cognitive: float = 1.5,
        social: float = 1.5,
        velocity_clip: float = 4.0,
    ):
        super().__init__(config)
        self.particles = particles
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social
        self.velocity_clip = velocity_clip

    def _optimize(
        self,
        objective: Objective,
        initial: frozenset[int] | None = None,
    ) -> SearchResult:
        rng = self._rng()
        clock = RunClock(self.config.time_limit)
        problem = objective.problem
        ids = np.array(sorted(problem.universe.source_ids), dtype=np.int64)
        index_of = {sid: i for i, sid in enumerate(ids.tolist())}
        required_mask = np.zeros(len(ids), dtype=bool)
        for sid in required_ids(objective):
            required_mask[index_of[sid]] = True
        budget = problem.max_sources

        positions = np.zeros((self.particles, len(ids)), dtype=bool)
        velocities = rng.uniform(-1, 1, size=(self.particles, len(ids)))
        for p in range(self.particles):
            positions[p] = self._repair(
                rng.random(len(ids)) < budget / len(ids),
                rng.random(len(ids)),
                required_mask,
                budget,
            )
        if initial is not None:
            # Seed particle 0 with the (repaired) warm start.
            start = self._start_selection(objective, initial, rng)
            positions[0] = np.isin(ids, sorted(start))

        personal_best = self._score(
            objective,
            [
                self._to_selection(positions[p], ids)
                for p in range(self.particles)
            ],
        )
        personal_positions = positions.copy()
        best_index = int(
            np.argmax([s.objective for s in personal_best])
        )
        best = personal_best[best_index]
        best_position = positions[best_index].copy()
        best_found_at = 0
        trajectory = [best.objective]
        iterations = 0
        stale = 0

        for iteration in range(1, self.config.max_iterations + 1):
            if clock.expired() or stale >= self.config.patience:
                break
            iterations = iteration
            improved = False
            # Synchronous update: every particle's velocity is driven by
            # the gbest from the *previous* iteration, all new positions
            # are sampled first (consuming the RNG in particle order), and
            # the whole swarm is scored as one batch before personal and
            # global bests move.
            for p in range(self.particles):
                r1 = rng.random(len(ids))
                r2 = rng.random(len(ids))
                velocities[p] = (
                    self.inertia * velocities[p]
                    + self.cognitive
                    * r1
                    * (personal_positions[p].astype(float) - positions[p])
                    + self.social
                    * r2
                    * (best_position.astype(float) - positions[p])
                )
                np.clip(
                    velocities[p],
                    -self.velocity_clip,
                    self.velocity_clip,
                    out=velocities[p],
                )
                probabilities = 1.0 / (1.0 + np.exp(-velocities[p]))
                sampled = rng.random(len(ids)) < probabilities
                positions[p] = self._repair(
                    sampled, probabilities, required_mask, budget
                )
            solutions = self._score(
                objective,
                [
                    self._to_selection(positions[p], ids)
                    for p in range(self.particles)
                ],
            )
            for p, solution in enumerate(solutions):
                if solution.objective > personal_best[p].objective:
                    personal_best[p] = solution
                    personal_positions[p] = positions[p].copy()
                if solution.objective > best.objective:
                    best = solution
                    best_position = positions[p].copy()
                    best_found_at = iteration
                    improved = True
            stale = 0 if improved else stale + 1
            trajectory.append(best.objective)

        stats = SearchStats(
            iterations=iterations,
            evaluations=objective.evaluations,
            elapsed_seconds=clock.elapsed(),
            best_found_at=best_found_at,
        )
        return SearchResult(best, stats, tuple(trajectory))

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _to_selection(position: np.ndarray, ids: np.ndarray) -> frozenset[int]:
        return frozenset(int(sid) for sid in ids[position])

    @staticmethod
    def _repair(
        position: np.ndarray,
        probabilities: np.ndarray,
        required_mask: np.ndarray,
        budget: int,
    ) -> np.ndarray:
        """Force the position into the constraint region.

        Constrained sources are switched on.  If the selection exceeds the
        budget, the free members with the lowest probabilities are evicted;
        if it is empty, the single highest-probability source is selected.
        """
        repaired = position | required_mask
        over = int(repaired.sum()) - budget
        if over > 0:
            free = repaired & ~required_mask
            free_indexes = np.nonzero(free)[0]
            order = free_indexes[np.argsort(probabilities[free_indexes])]
            repaired[order[:over]] = False
        if not repaired.any():
            repaired[int(np.argmax(probabilities))] = True
        return repaired
