"""Stochastic local search — hill climbing with random walk and restarts.

Another of the optimizers the paper compared against tabu search.  From a
random start, each iteration samples the neighborhood and takes the best
improving move; with probability ``walk_probability`` it takes a random
move instead (the stochastic component that escapes shallow local optima).
When no improving move exists the search restarts from a fresh random
selection, keeping the best solution across restarts.
"""

from __future__ import annotations

from ..quality.overall import Objective
from .base import (
    Optimizer,
    OptimizerConfig,
    RunClock,
    SearchResult,
    SearchStats,
    random_selection,
    required_ids,
)
from .neighborhood import Neighborhood


class StochasticLocalSearch(Optimizer):
    """Best-improvement hill climbing with random walk and restarts."""

    name = "local"

    def __init__(
        self,
        config: OptimizerConfig | None = None,
        walk_probability: float = 0.1,
        max_restarts: int = 5,
    ):
        super().__init__(config)
        if not 0.0 <= walk_probability <= 1.0:
            raise ValueError(
                f"walk_probability must be in [0, 1], got {walk_probability}"
            )
        self.walk_probability = walk_probability
        self.max_restarts = max_restarts

    def _optimize(
        self,
        objective: Objective,
        initial: frozenset[int] | None = None,
    ) -> SearchResult:
        rng = self._rng()
        clock = RunClock(self.config.time_limit)
        problem = objective.problem
        neighborhood = Neighborhood(
            problem.universe.source_ids,
            required_ids(objective),
            problem.max_sources,
            sample_size=self.config.sample_size,
        )

        current = objective.evaluate(
            self._start_selection(objective, initial, rng)
        )
        best = current
        best_found_at = 0
        restarts = 0
        trajectory = [best.objective]
        iterations = 0

        for iteration in range(1, self.config.max_iterations + 1):
            if clock.expired():
                break
            iterations = iteration
            if rng.random() < self.walk_probability:
                move = neighborhood.random_move(current.selected, rng)
                if move is not None:
                    current = self._score(
                        objective, [move.apply(current.selected)]
                    )[0]
            else:
                improved = self._climb(objective, neighborhood, current, rng)
                if improved is None:
                    restarts += 1
                    if restarts > self.max_restarts:
                        break
                    current = objective.evaluate(
                        random_selection(objective, rng)
                    )
                else:
                    current = improved
            if current.objective > best.objective:
                best = current
                best_found_at = iteration
            trajectory.append(best.objective)

        stats = SearchStats(
            iterations=iterations,
            evaluations=objective.evaluations,
            elapsed_seconds=clock.elapsed(),
            best_found_at=best_found_at,
        )
        return SearchResult(best, stats, tuple(trajectory))

    def _climb(self, objective, neighborhood, current, rng):
        """The best strictly improving neighbor, or None at a local optimum."""
        batch = neighborhood.move_batch(current.selected, rng)
        solutions = self._score(
            objective, [candidate for _, candidate in batch]
        )
        best_neighbor = None
        best_objective = current.objective
        for candidate in solutions:
            if candidate.objective > best_objective:
                best_neighbor = candidate
                best_objective = candidate.objective
        return best_neighbor
