"""Multi-process portfolio search over a shared compiled universe.

µBE's interactive loop lives or dies on re-solve latency, and after the
columnar batch core every solve still occupies one CPU core.  This module
turns the single-threaded optimizers into a *portfolio*: K workers —
seeded restarts of one strategy, heterogeneous strategies, or any mix —
run concurrently across a :class:`~concurrent.futures.ProcessPoolExecutor`
and the engine deterministically merges their results.

Design points:

* **Compile once, ship once.**  The :class:`Problem` (universe, sketches,
  constraints) and optionally the prebuilt
  :class:`~repro.similarity.matrix.NameSimilarityMatrix` are pickled into
  a :class:`WorkerContext` that travels to each worker process exactly
  once, through the pool initializer.  Everything derived — `Objective`,
  `EvalContext`, `StackedSketches`, match operator — is rebuilt lazily
  *inside* the worker, because the numpy state is cheap to recompute but
  expensive to serialize.  Under ``fork`` the context is shared
  copy-on-write for free; under ``spawn`` it is pickled, which the
  explicit ``__getstate__`` hooks on `Universe` and friends keep lean.

* **Deterministic merge.**  Workers are merged in *submission* order, the
  winner chosen by ``(objective, feasible)`` with ties broken by the
  canonical selection key (the sorted source-id tuple) and then the lower
  worker index — never by completion order, so a loaded machine returns
  the same answer as an idle one.

* **jobs=1 ≡ sequential.**  With one job the engine runs every worker in
  this process, seed for seed through the very same
  :meth:`~repro.search.base.Optimizer.optimize` path a plain solve uses,
  so single-job portfolio output is bit-identical to today's sequential
  solves (tests/search/test_parallel_determinism.py holds this line).

* **Early stop is advisory.**  A worker whose solution reaches
  ``stop_quality`` sets a shared event; siblings observe it at their next
  ``clock.expired()`` check (see
  :func:`~repro.search.base.install_stop_check`).  Losing the signal only
  costs runtime, never correctness.

* **Failure is survivable.**  A crashing worker is logged into its
  :class:`WorkerOutcome` and counted in
  :attr:`PortfolioStats.failed_workers`; the solve returns the best
  surviving result.  Only a portfolio with zero survivors raises
  :class:`~repro.exceptions.SearchError`, with per-worker reasons.

* **Telemetry folds back.**  Each worker traces into its own in-memory
  tracer and returns ``(spans, metrics snapshot)``; the parent re-indexes
  the spans under its open ``portfolio.solve`` span and merges the
  counters, so ``--trace`` and ``mube trace-report`` see the whole run.
"""

from __future__ import annotations

import multiprocessing
import time
from collections.abc import Iterable, Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

from ..core import Problem
from ..exceptions import SearchError
from ..quality.overall import Objective
from ..similarity.matrix import NameSimilarityMatrix
from ..telemetry import (
    InMemoryExporter,
    Telemetry,
    get_telemetry,
    set_telemetry,
)
from .base import OptimizerConfig, SearchResult, install_stop_check


@dataclass(frozen=True, slots=True)
class WorkerSpec:
    """One worker's marching orders: which optimizer, how, from where.

    Everything here is plain picklable data — the worker process rebuilds
    the optimizer via :meth:`~repro.search.base.Optimizer.run_from_config`
    from the registry name, the config and the extra constructor
    ``params`` (an item tuple so the spec stays hashable).
    """

    optimizer: str
    config: OptimizerConfig
    params: tuple[tuple[str, object], ...] = ()
    label: str = ""

    @property
    def seed(self) -> int:
        """The worker's RNG seed (from its config)."""
        return self.config.seed

    def describe(self) -> str:
        """Human-readable identity for logs and reports."""
        return self.label or f"{self.optimizer}(seed={self.seed})"


@dataclass(frozen=True, slots=True)
class WorkerOutcome:
    """What one portfolio worker produced: a result or a failure reason."""

    index: int
    label: str
    optimizer: str
    seed: int
    result: SearchResult | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True iff the worker completed and returned a result."""
        return self.result is not None


@dataclass(frozen=True, slots=True)
class PortfolioStats:
    """Aggregate statistics over one portfolio solve.

    Attached to the winning :class:`~repro.search.base.SearchResult` as
    its ``portfolio`` field, so callers that ignore parallelism see a
    plain result and callers that care can drill into every worker.
    """

    jobs: int
    workers: tuple[WorkerOutcome, ...]
    winner_index: int
    elapsed_seconds: float
    early_stopped: bool

    @property
    def failed_workers(self) -> int:
        """How many workers crashed instead of returning a result."""
        return sum(1 for outcome in self.workers if not outcome.ok)

    @property
    def succeeded_workers(self) -> int:
        """How many workers returned a result."""
        return sum(1 for outcome in self.workers if outcome.ok)

    @property
    def total_iterations(self) -> int:
        """Optimizer iterations summed over the surviving workers."""
        return sum(o.result.stats.iterations for o in self.workers if o.ok)

    @property
    def total_evaluations(self) -> int:
        """Objective evaluations summed over the surviving workers."""
        return sum(o.result.stats.evaluations for o in self.workers if o.ok)

    @property
    def winner(self) -> WorkerOutcome:
        """The outcome whose result the engine returned."""
        return self.workers[self.winner_index]


class WorkerContext:
    """The pickle-once payload every portfolio worker shares.

    Carries the compiled problem (and, when available, the prebuilt
    similarity matrix) plus the run parameters common to all workers.
    The expensive derived state — :class:`Objective` with its
    `EvalContext`, stacked sketches and match operator — is *not*
    shipped: :meth:`build_objective` reconstructs it fresh inside the
    worker, per run, so results never depend on which process a task
    landed in.
    """

    def __init__(
        self,
        problem: Problem,
        similarity: NameSimilarityMatrix | None = None,
        incremental: bool = False,
        initial: frozenset[int] | None = None,
        stop_quality: float | None = None,
        collect_telemetry: bool = False,
    ):
        self.problem = problem
        self.similarity = similarity
        self.incremental = incremental
        self.initial = initial
        self.stop_quality = stop_quality
        self.collect_telemetry = collect_telemetry

    def build_objective(self) -> Objective:
        """A fresh objective compiled from the shipped problem."""
        return Objective(
            self.problem,
            similarity=self.similarity,
            incremental=self.incremental,
        )

    def __getstate__(self) -> dict:
        return {
            "problem": self.problem,
            "similarity": self.similarity,
            "incremental": self.incremental,
            "initial": self.initial,
            "stop_quality": self.stop_quality,
            "collect_telemetry": self.collect_telemetry,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return (
            f"WorkerContext({len(self.problem.universe)} sources, "
            f"incremental={self.incremental})"
        )


# -- portfolio construction ---------------------------------------------------


def seeded_restarts(
    optimizer: str,
    count: int,
    base_config: OptimizerConfig | None = None,
) -> tuple[WorkerSpec, ...]:
    """``count`` restarts of one optimizer with consecutive seeds.

    Worker ``i`` gets ``base_config.seed + i``, so a portfolio is an
    explicit, reproducible function of the base seed — and the 0th worker
    runs the exact search a sequential solve with ``base_config`` would.
    """
    if count < 1:
        raise SearchError(f"portfolio needs at least one worker, got {count}")
    config = base_config or OptimizerConfig()
    return tuple(
        WorkerSpec(
            optimizer=optimizer,
            config=replace(config, seed=config.seed + i),
            label=f"{optimizer}[{i}]",
        )
        for i in range(count)
    )


def parse_portfolio(
    spec: str,
    base_config: OptimizerConfig | None = None,
) -> tuple[WorkerSpec, ...]:
    """Parse ``"tabu:4,local:2,annealing:2"`` into worker specs.

    Each comma-separated entry is ``name`` or ``name:count`` (count
    defaults to 1).  Seeds are assigned consecutively across the *whole*
    portfolio — with base seed s, the example yields tabu seeds s..s+3,
    local s+4..s+5, annealing s+6..s+7 — so the portfolio is reproducible
    and no two workers duplicate each other's search.
    """
    from . import OPTIMIZERS

    config = base_config or OptimizerConfig()
    workers: list[WorkerSpec] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, count_text = entry.partition(":")
        name = name.strip()
        if name not in OPTIMIZERS:
            raise SearchError(
                f"unknown optimizer {name!r} in portfolio {spec!r}; "
                f"available: {', '.join(sorted(OPTIMIZERS))}"
            )
        try:
            count = int(count_text) if count_text else 1
        except ValueError:
            raise SearchError(
                f"bad worker count {count_text!r} in portfolio entry "
                f"{entry!r}"
            ) from None
        if count < 1:
            raise SearchError(
                f"worker count must be >= 1 in portfolio entry {entry!r}"
            )
        for k in range(count):
            index = len(workers)
            workers.append(
                WorkerSpec(
                    optimizer=name,
                    config=replace(config, seed=config.seed + index),
                    label=f"{name}[{k}]",
                )
            )
    if not workers:
        raise SearchError(f"portfolio {spec!r} contains no workers")
    return tuple(workers)


def resolve_portfolio(
    portfolio: str | Sequence[WorkerSpec] | None,
    jobs: int,
    default_optimizer: str,
    base_config: OptimizerConfig | None = None,
) -> tuple[WorkerSpec, ...]:
    """Normalize the user-facing ``portfolio=`` argument to worker specs.

    ``None`` means "one seeded restart of the default optimizer per job",
    a string goes through :func:`parse_portfolio`, and an explicit spec
    sequence passes through untouched.
    """
    if portfolio is None:
        return seeded_restarts(default_optimizer, max(jobs, 1), base_config)
    if isinstance(portfolio, str):
        return parse_portfolio(portfolio, base_config)
    return tuple(portfolio)


# -- worker-process side ------------------------------------------------------

#: Per-process state installed by :func:`_worker_init`; module globals are
#: the one channel a ``ProcessPoolExecutor`` initializer can fill.
_WORKER_CONTEXT: WorkerContext | None = None
_WORKER_STOP = None


def _worker_init(context: WorkerContext, stop_event) -> None:
    """Pool initializer: receive the shared context, neutralize inherited state.

    Under ``fork`` the child starts as a byte-for-byte copy of the parent,
    including any installed tracer with open file handles — so the first
    thing a worker does is reset the process-global telemetry and event
    log to their no-ops.  The shared early-stop event (picklable only
    through ``initargs``, never through the task queue) becomes this
    process's cooperative stop check.
    """
    global _WORKER_CONTEXT, _WORKER_STOP
    _WORKER_CONTEXT = context
    _WORKER_STOP = stop_event
    set_telemetry(None)
    from ..explain.events import set_event_log

    set_event_log(None)
    if stop_event is not None:
        install_stop_check(stop_event.is_set)


def _execute_spec(context: WorkerContext, spec: WorkerSpec) -> SearchResult:
    """Rebuild the objective and run one worker's optimizer."""
    from . import OPTIMIZERS

    cls = OPTIMIZERS[spec.optimizer]
    objective = context.build_objective()
    return cls.run_from_config(
        objective,
        spec.config,
        initial=context.initial,
        **dict(spec.params),
    )


def _hit_quality_bound(result: SearchResult, bound: float | None) -> bool:
    """True iff a result satisfies the early-stop quality bound."""
    return (
        bound is not None
        and result.solution.feasible
        and result.solution.quality >= bound
    )


def _run_worker(index: int, spec: WorkerSpec) -> dict:
    """Pool task: run one spec against the process-shared context.

    Returns a plain dict (cheap to pickle back): the result plus, when
    the parent traces, the worker's finished spans and metrics snapshot.
    Failures are caught and shipped home as strings so one bad worker
    can never poison the pool protocol.
    """
    context = _WORKER_CONTEXT
    assert context is not None, "worker used before _worker_init ran"
    exporter = InMemoryExporter()
    telemetry = (
        Telemetry(exporters=[exporter]) if context.collect_telemetry else None
    )
    if telemetry is not None:
        set_telemetry(telemetry)
    try:
        result = _execute_spec(context, spec)
    except Exception as exc:  # noqa: BLE001 - shipped home as the outcome
        return {"index": index, "error": f"{type(exc).__name__}: {exc}"}
    finally:
        if telemetry is not None:
            set_telemetry(None)
    payload: dict = {"index": index, "result": result}
    if telemetry is not None:
        payload["spans"] = tuple(exporter.spans)
        payload["metrics"] = telemetry.metrics.snapshot()
    if _WORKER_STOP is not None and _hit_quality_bound(
        result, context.stop_quality
    ):
        _WORKER_STOP.set()
    return payload


# -- deterministic merge ------------------------------------------------------


def _selection_key(result: SearchResult) -> tuple[int, ...]:
    """Canonical, order-independent identity of a result's selection."""
    return tuple(sorted(result.solution.selected))


def _beats(challenger: SearchResult, incumbent: SearchResult) -> bool:
    """Deterministic winner order: quality, then canonical selection key.

    Feasible beats infeasible at equal objective; at a full tie the
    lexicographically smallest selection key wins, and the caller keeps
    the earlier worker on identical keys — so the winner is a pure
    function of the worker list, not of scheduling.
    """
    a = (challenger.solution.objective, challenger.solution.feasible)
    b = (incumbent.solution.objective, incumbent.solution.feasible)
    if a != b:
        return a > b
    return _selection_key(challenger) < _selection_key(incumbent)


def select_winner(outcomes: Sequence[WorkerOutcome]) -> WorkerOutcome | None:
    """The winning outcome under the deterministic merge order."""
    winner: WorkerOutcome | None = None
    for outcome in sorted(outcomes, key=lambda o: o.index):
        if outcome.result is None:
            continue
        if winner is None or _beats(outcome.result, winner.result):
            winner = outcome
    return winner


class _LocalStopFlag:
    """In-process stand-in for the multiprocessing early-stop event."""

    __slots__ = ("_set",)

    def __init__(self):
        self._set = False

    def set(self) -> None:
        self._set = True

    def is_set(self) -> bool:
        return self._set


# -- the engine ---------------------------------------------------------------


class ParallelSolveEngine:
    """Runs a portfolio of optimizer workers and merges deterministically.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every worker in this
        process — no pool, no pickling — and is bit-identical to the
        sequential path, so ``jobs`` is a pure throughput knob.
    stop_quality:
        Optional early-stop bound: the first worker whose solution is
        feasible with ``quality >= stop_quality`` signals the others to
        wind down at their next iteration check.
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` uses the platform default.
    """

    def __init__(
        self,
        jobs: int = 1,
        stop_quality: float | None = None,
        start_method: str | None = None,
    ):
        if jobs < 1:
            raise SearchError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.stop_quality = stop_quality
        self.start_method = start_method

    def solve(
        self,
        problem: Problem,
        workers: Iterable[WorkerSpec],
        similarity: NameSimilarityMatrix | None = None,
        initial: frozenset[int] | None = None,
        incremental: bool = False,
    ) -> SearchResult:
        """Run the portfolio and return the winner, annotated with stats.

        The returned result is the winning worker's
        :class:`~repro.search.base.SearchResult` with its ``portfolio``
        field set to the run's :class:`PortfolioStats`.
        """
        specs = tuple(workers)
        if not specs:
            raise SearchError("portfolio must contain at least one worker")
        from . import OPTIMIZERS

        unknown = sorted({s.optimizer for s in specs} - OPTIMIZERS.keys())
        if unknown:
            raise SearchError(
                f"unknown optimizer(s) in portfolio: {', '.join(unknown)}; "
                f"available: {', '.join(sorted(OPTIMIZERS))}"
            )
        telemetry = get_telemetry()
        context = WorkerContext(
            problem=problem,
            similarity=similarity,
            incremental=incremental,
            initial=initial,
            stop_quality=self.stop_quality,
            collect_telemetry=telemetry.enabled,
        )
        started = time.perf_counter()
        with telemetry.span(
            "portfolio.solve", jobs=self.jobs, workers=len(specs)
        ) as span:
            if self.jobs == 1:
                outcomes, early_stopped = self._solve_inline(context, specs)
            else:
                outcomes, early_stopped = self._solve_pool(
                    context, specs, telemetry
                )
            elapsed = time.perf_counter() - started
            winner = select_winner(outcomes)
            if winner is None:
                reasons = "; ".join(
                    f"worker {o.index} ({o.label}): {o.error}"
                    for o in outcomes
                )
                raise SearchError(
                    f"all {len(outcomes)} portfolio workers failed: "
                    f"{reasons}"
                )
            stats = PortfolioStats(
                jobs=self.jobs,
                workers=tuple(sorted(outcomes, key=lambda o: o.index)),
                winner_index=winner.index,
                elapsed_seconds=elapsed,
                early_stopped=early_stopped,
            )
            span.set(
                winner=winner.index,
                failed=stats.failed_workers,
                early_stopped=early_stopped,
                best_objective=winner.result.solution.objective,
            )
            metrics = telemetry.metrics
            metrics.counter("portfolio.solves").inc()
            metrics.counter("portfolio.workers").inc(len(specs))
            metrics.counter("portfolio.workers_failed").inc(
                stats.failed_workers
            )
            if early_stopped:
                metrics.counter("portfolio.early_stops").inc()
            for outcome in stats.workers:
                if outcome.ok:
                    metrics.histogram("portfolio.worker_seconds").observe(
                        outcome.result.stats.elapsed_seconds
                    )
        return replace(winner.result, portfolio=stats)

    # -- execution strategies -------------------------------------------------

    def _solve_inline(
        self, context: WorkerContext, specs: tuple[WorkerSpec, ...]
    ) -> tuple[list[WorkerOutcome], bool]:
        """Run every worker in this process, in submission order.

        Identical semantics to the pool path — fresh objective per
        worker, same early-stop bound — minus the process boundary, so
        ``jobs=1`` results match ``jobs=N`` results exactly.  Telemetry
        needs no folding: workers trace straight into the live tracer.
        """
        flag = _LocalStopFlag()
        previous = (
            install_stop_check(flag.is_set)
            if self.stop_quality is not None
            else None
        )
        outcomes: list[WorkerOutcome] = []
        try:
            for index, spec in enumerate(specs):
                try:
                    result = _execute_spec(context, spec)
                except SystemExit as exc:
                    outcomes.append(
                        self._failure(index, spec, f"SystemExit: {exc.code}")
                    )
                except Exception as exc:  # noqa: BLE001 - per-worker outcome
                    outcomes.append(
                        self._failure(
                            index, spec, f"{type(exc).__name__}: {exc}"
                        )
                    )
                else:
                    outcomes.append(self._success(index, spec, result))
                    if _hit_quality_bound(result, self.stop_quality):
                        flag.set()
        finally:
            if self.stop_quality is not None:
                install_stop_check(previous)
        return outcomes, flag.is_set()

    def _solve_pool(
        self,
        context: WorkerContext,
        specs: tuple[WorkerSpec, ...],
        telemetry,
    ) -> tuple[list[WorkerOutcome], bool]:
        """Fan the workers out across a process pool and gather outcomes."""
        mp_context = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else multiprocessing.get_context()
        )
        stop_event = (
            mp_context.Event() if self.stop_quality is not None else None
        )
        launch_offset = telemetry.now()
        outcomes: list[WorkerOutcome] = []
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(specs)),
            mp_context=mp_context,
            initializer=_worker_init,
            initargs=(context, stop_event),
        ) as pool:
            futures = [
                pool.submit(_run_worker, index, spec)
                for index, spec in enumerate(specs)
            ]
            for index, (spec, future) in enumerate(zip(specs, futures)):
                try:
                    payload = future.result()
                except Exception as exc:  # noqa: BLE001 - e.g. BrokenProcessPool
                    outcomes.append(
                        self._failure(
                            index, spec, f"{type(exc).__name__}: {exc}"
                        )
                    )
                    continue
                error = payload.get("error")
                if error is not None:
                    outcomes.append(self._failure(index, spec, error))
                    continue
                telemetry.absorb(
                    payload.get("spans", ()),
                    payload.get("metrics"),
                    offset=launch_offset,
                )
                outcomes.append(
                    self._success(index, spec, payload["result"])
                )
        early_stopped = (
            stop_event.is_set() if stop_event is not None else False
        )
        return outcomes, early_stopped

    @staticmethod
    def _success(
        index: int, spec: WorkerSpec, result: SearchResult
    ) -> WorkerOutcome:
        return WorkerOutcome(
            index=index,
            label=spec.describe(),
            optimizer=spec.optimizer,
            seed=spec.seed,
            result=result,
        )

    @staticmethod
    def _failure(index: int, spec: WorkerSpec, error: str) -> WorkerOutcome:
        return WorkerOutcome(
            index=index,
            label=spec.describe(),
            optimizer=spec.optimizer,
            seed=spec.seed,
            error=error,
        )

    def __repr__(self) -> str:
        return (
            f"ParallelSolveEngine(jobs={self.jobs}, "
            f"stop_quality={self.stop_quality})"
        )


def render_portfolio(stats: PortfolioStats) -> str:
    """A small human-readable table over a portfolio's workers."""
    lines = [
        f"portfolio: {len(stats.workers)} workers, jobs={stats.jobs}, "
        f"{stats.elapsed_seconds:.2f}s"
        + (", early stop" if stats.early_stopped else "")
    ]
    for outcome in stats.workers:
        marker = "*" if outcome.index == stats.winner_index else " "
        if outcome.ok:
            solution = outcome.result.solution
            lines.append(
                f" {marker} [{outcome.index}] {outcome.label:<16} "
                f"Q={solution.quality:.4f} "
                f"iters={outcome.result.stats.iterations} "
                f"{outcome.result.stats.elapsed_seconds:.2f}s"
            )
        else:
            lines.append(
                f" {marker} [{outcome.index}] {outcome.label:<16} "
                f"FAILED: {outcome.error}"
            )
    return "\n".join(lines)


__all__ = [
    "ParallelSolveEngine",
    "PortfolioStats",
    "WorkerContext",
    "WorkerOutcome",
    "WorkerSpec",
    "parse_portfolio",
    "render_portfolio",
    "resolve_portfolio",
    "seeded_restarts",
    "select_winner",
]
