"""Multi-process portfolio search over a shared compiled universe.

µBE's interactive loop lives or dies on re-solve latency, and after the
columnar batch core every solve still occupies one CPU core.  This module
turns the single-threaded optimizers into a *portfolio*: K workers —
seeded restarts of one strategy, heterogeneous strategies, or any mix —
run concurrently across a :class:`~concurrent.futures.ProcessPoolExecutor`
and the engine deterministically merges their results.

Design points:

* **Compile once, ship once.**  The :class:`Problem` (universe, sketches,
  constraints) and optionally the prebuilt
  :class:`~repro.similarity.matrix.NameSimilarityMatrix` are pickled into
  a :class:`WorkerContext` that travels to each worker process exactly
  once, through the pool initializer.  Everything derived — `Objective`,
  `EvalContext`, `StackedSketches`, match operator — is rebuilt lazily
  *inside* the worker, because the numpy state is cheap to recompute but
  expensive to serialize.  Under ``fork`` the context is shared
  copy-on-write for free; under ``spawn`` it is pickled, which the
  explicit ``__getstate__`` hooks on `Universe` and friends keep lean.

* **Deterministic merge.**  Workers are merged in *submission* order, the
  winner chosen by ``(objective, feasible)`` with ties broken by the
  canonical selection key (the sorted source-id tuple) and then the lower
  worker index — never by completion order, so a loaded machine returns
  the same answer as an idle one.

* **jobs=1 ≡ sequential.**  With one job the engine runs every worker in
  this process, seed for seed through the very same
  :meth:`~repro.search.base.Optimizer.optimize` path a plain solve uses,
  so single-job portfolio output is bit-identical to today's sequential
  solves (tests/search/test_parallel_determinism.py holds this line).

* **Early stop is advisory.**  A worker whose solution reaches
  ``stop_quality`` sets a shared event; siblings observe it at their next
  ``clock.expired()`` check (see
  :func:`~repro.search.base.install_stop_check`).  Losing the signal only
  costs runtime, never correctness.

* **Failure is survivable — and recoverable.**  A crashing worker is
  logged into its :class:`WorkerOutcome` and counted in
  :attr:`PortfolioStats.failed_workers`; the solve returns the best
  surviving result.  With a :class:`~repro.search.resilience.
  ResilienceConfig` the engine goes further: hung workers are cancelled
  on a per-worker wall-clock timeout (``timed_out`` outcomes), failed
  and timed-out workers are retried on a bounded deterministic schedule
  (:class:`~repro.search.resilience.RetryPolicy` — same seed by default,
  or the pure ``(base_seed, worker_index, attempt)`` derivation under
  ``reseed``), a broken process pool is rebuilt once with its unfinished
  workers requeued (degrading to in-process execution if the rebuilt
  pool breaks too), and best-so-far state is checkpointed atomically
  after every worker outcome so a killed solve resumes instead of
  restarting.  Only a portfolio with zero survivors raises
  :class:`~repro.exceptions.SearchError`, with per-worker reasons.

* **Telemetry folds back.**  Each worker traces into its own in-memory
  tracer and returns ``(spans, metrics snapshot)``; the parent re-indexes
  the spans under its open ``portfolio.solve`` span and merges the
  counters, so ``--trace`` and ``mube trace-report`` see the whole run.
  Recovery actions add ``portfolio.retry`` spans and the
  ``portfolio.retries`` / ``portfolio.timeouts`` / ``portfolio.requeues``
  / ``portfolio.pool_rebuilds`` / ``portfolio.checkpoints`` /
  ``portfolio.resumed_workers`` counters (docs/observability.md).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
from collections import deque
from collections.abc import Iterable, Mapping, Sequence
from contextlib import contextmanager
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace

from ..core import Problem
from ..exceptions import SearchError
from ..quality.overall import Objective
from ..similarity.matrix import NameSimilarityMatrix
from ..telemetry import (
    InMemoryExporter,
    PhaseProfiler,
    Telemetry,
    get_profiler,
    get_telemetry,
    set_profiler,
    set_telemetry,
    use_profiler,
)
from ..telemetry.observatory.heartbeat import (
    DEFAULT_HEARTBEAT_INTERVAL,
    HEARTBEAT_QUEUE_SIZE,
    HeartbeatEmitter,
    queue_sink,
)
from ..telemetry.observatory.status import RunStatus
from .base import (
    OptimizerConfig,
    SearchResult,
    SearchStats,
    install_stop_check,
    progress_hook_scope,
    stop_check_scope,
)
from .resilience import (
    Checkpoint,
    ResilienceConfig,
    WorkerProgress,
    load_checkpoint,
    problem_fingerprint,
    respec_for_attempt,
    write_checkpoint,
)
from .shm import SharedSegmentSet, attach_array, shm_available


@dataclass(frozen=True, slots=True)
class WorkerSpec:
    """One worker's marching orders: which optimizer, how, from where.

    Everything here is plain picklable data — the worker process rebuilds
    the optimizer via :meth:`~repro.search.base.Optimizer.run_from_config`
    from the registry name, the config and the extra constructor
    ``params`` (an item tuple so the spec stays hashable).  The optimizer
    name may also be a ``"module.path:ClassName"`` reference to an
    :class:`~repro.search.base.Optimizer` subclass outside the registry —
    resolved inside the worker process, so it works under ``spawn`` too;
    the fault-injection harness (:mod:`repro.testing.faults`) rides this.
    """

    optimizer: str
    config: OptimizerConfig
    params: tuple[tuple[str, object], ...] = ()
    label: str = ""
    #: Per-worker warm-start selection (sorted source-id tuple).  None
    #: falls back to the context-wide ``initial``.  The session's
    #: neighborhood seeding (``Session.solve(neighborhood=True)``) uses
    #: this to fan workers out around the previous answer.
    initial: tuple[int, ...] | None = None

    @property
    def seed(self) -> int:
        """The worker's RNG seed (from its config)."""
        return self.config.seed

    def describe(self) -> str:
        """Human-readable identity for logs and reports."""
        return self.label or f"{self.optimizer}(seed={self.seed})"


@dataclass(frozen=True, slots=True)
class WorkerOutcome:
    """What one portfolio worker produced: a result or a failure reason.

    ``attempts`` counts every try this run spent on the worker (1 when
    nothing went wrong); ``timed_out`` marks workers whose last attempt
    exceeded the per-worker wall-clock budget; ``resumed`` marks outcomes
    restored from a checkpoint instead of being recomputed.
    """

    index: int
    label: str
    optimizer: str
    seed: int
    result: SearchResult | None = None
    error: str | None = None
    timed_out: bool = False
    attempts: int = 1
    resumed: bool = False

    @property
    def ok(self) -> bool:
        """True iff the worker completed and returned a result."""
        return self.result is not None


@dataclass(frozen=True, slots=True)
class PortfolioStats:
    """Aggregate statistics over one portfolio solve.

    Attached to the winning :class:`~repro.search.base.SearchResult` as
    its ``portfolio`` field, so callers that ignore parallelism see a
    plain result and callers that care can drill into every worker.
    The resilience counters (``retries`` … ``resumed_workers``) stay 0
    on runs with no :class:`~repro.search.resilience.ResilienceConfig`.
    """

    jobs: int
    workers: tuple[WorkerOutcome, ...]
    winner_index: int
    elapsed_seconds: float
    early_stopped: bool
    retries: int = 0
    timeouts: int = 0
    requeues: int = 0
    pool_rebuilds: int = 0
    resumed_workers: int = 0

    @property
    def failed_workers(self) -> int:
        """How many workers crashed instead of returning a result."""
        return sum(1 for outcome in self.workers if not outcome.ok)

    @property
    def succeeded_workers(self) -> int:
        """How many workers returned a result."""
        return sum(1 for outcome in self.workers if outcome.ok)

    @property
    def timed_out_workers(self) -> int:
        """How many workers' final attempt exceeded the wall-clock budget."""
        return sum(1 for outcome in self.workers if outcome.timed_out)

    @property
    def total_iterations(self) -> int:
        """Optimizer iterations summed over the surviving workers."""
        return sum(o.result.stats.iterations for o in self.workers if o.ok)

    @property
    def total_evaluations(self) -> int:
        """Objective evaluations summed over the surviving workers."""
        return sum(o.result.stats.evaluations for o in self.workers if o.ok)

    @property
    def winner(self) -> WorkerOutcome:
        """The outcome whose result the engine returned."""
        for outcome in self.workers:
            if outcome.index == self.winner_index:
                return outcome
        raise SearchError(
            f"winner index {self.winner_index} not among the outcomes"
        )


class WorkerContext:
    """The pickle-once payload every portfolio worker shares.

    Carries the compiled problem (and, when available, the prebuilt
    similarity matrix) plus the run parameters common to all workers.
    The expensive derived state — :class:`Objective` with its
    `EvalContext`, stacked sketches and match operator — is *not*
    shipped: :meth:`build_objective` reconstructs it fresh inside the
    worker, per run, so results never depend on which process a task
    landed in.
    """

    def __init__(
        self,
        problem: Problem,
        similarity: NameSimilarityMatrix | None = None,
        incremental: bool = False,
        initial: frozenset[int] | None = None,
        stop_quality: float | None = None,
        collect_telemetry: bool = False,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        profile: bool = False,
        profile_memory: bool = False,
        eval_context=None,
    ):
        self.problem = problem
        self.similarity = similarity
        self.incremental = incremental
        self.initial = initial
        self.stop_quality = stop_quality
        self.collect_telemetry = collect_telemetry
        self.heartbeat_interval = heartbeat_interval
        self.profile = profile
        self.profile_memory = profile_memory
        self.eval_context = eval_context

    def build_objective(self) -> Objective:
        """A fresh objective compiled from the shipped problem.

        When the caller attached a pre-compiled
        :class:`~repro.quality.compiled.EvalContext` (the session's delta
        pipeline does, so a patched compile is not redone per worker),
        the objective adopts it instead of compiling cold — bit-identical
        either way, by the context-patching contract.
        """
        return Objective(
            self.problem,
            similarity=self.similarity,
            incremental=self.incremental,
            context=self.eval_context,
        )

    def __getstate__(self) -> dict:
        return {
            "problem": self.problem,
            "similarity": self.similarity,
            "incremental": self.incremental,
            "initial": self.initial,
            "stop_quality": self.stop_quality,
            "collect_telemetry": self.collect_telemetry,
            "heartbeat_interval": self.heartbeat_interval,
            "profile": self.profile,
            "profile_memory": self.profile_memory,
            "eval_context": self.eval_context,
        }

    def __setstate__(self, state: dict) -> None:
        state.setdefault("heartbeat_interval", DEFAULT_HEARTBEAT_INTERVAL)
        state.setdefault("profile", False)
        state.setdefault("profile_memory", False)
        state.setdefault("eval_context", None)
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return (
            f"WorkerContext({len(self.problem.universe)} sources, "
            f"incremental={self.incremental})"
        )


class _SharedContextPayload:
    """A :class:`WorkerContext` whose big arrays ride shared memory.

    Built parent-side by :func:`export_context`: the similarity matrix
    (dense array or CSR triple), the compiled ``EvalContext`` vectors and
    the stacked PCSA word matrix are copied into
    :class:`~repro.search.shm.SharedSegmentSet` segments, and this pickle
    carries only their :class:`~repro.search.shm.SharedArrayRef`
    descriptors plus the context's small fields.  :meth:`materialize`
    runs inside the pool initializer and reassembles an equivalent
    context over zero-copy read-only views of the segments — every
    worker and every pool generation attaches the same bytes, so the
    solve is bit-identical to the plain-pickle transport.
    """

    def __init__(self, context: WorkerContext, segments: SharedSegmentSet):
        self.problem = context.problem
        self.fields = {
            "incremental": context.incremental,
            "initial": context.initial,
            "stop_quality": context.stop_quality,
            "collect_telemetry": context.collect_telemetry,
            "heartbeat_interval": context.heartbeat_interval,
            "profile": context.profile,
            "profile_memory": context.profile_memory,
        }
        self.similarity = None
        matrix = context.similarity
        if matrix is not None:
            if matrix.is_sparse:
                sparse = matrix._sparse
                self.similarity = (
                    "sparse",
                    matrix.names,
                    matrix.measure_name,
                    sparse.n,
                    segments.share(sparse.indptr),
                    segments.share(sparse.indices),
                    segments.share(sparse.data),
                )
            else:
                self.similarity = (
                    "dense",
                    matrix.names,
                    matrix.measure_name,
                    segments.share(matrix.matrix),
                )
        self.eval_context = None
        eval_context = context.eval_context
        if eval_context is not None:
            stacked = eval_context.stacked
            self.eval_context = {
                "ids": segments.share(eval_context.ids),
                "coop_mask": segments.share(eval_context.coop_mask),
                "cards": segments.share(eval_context.cards),
                "stacked": (
                    None
                    if stacked is None
                    else (
                        segments.share(stacked.words),
                        stacked.num_maps,
                        stacked.map_bits,
                        stacked.seed,
                    )
                ),
                "total_cardinality": eval_context.total_cardinality,
                "universe_distinct": eval_context.universe_distinct,
                "characteristics": eval_context.characteristics,
                "vector_names": eval_context.vector_names,
            }

    def materialize(self) -> WorkerContext:
        """Reassemble the context over attached segments (worker side)."""
        similarity = None
        if self.similarity is not None:
            if self.similarity[0] == "sparse":
                from ..similarity.matrix import _CsrMatrix

                _, names, measure_name, n, indptr, indices, data = (
                    self.similarity
                )
                similarity = NameSimilarityMatrix.from_sparse(
                    names,
                    _CsrMatrix(
                        n,
                        attach_array(indptr),
                        attach_array(indices),
                        attach_array(data),
                    ),
                    measure_name,
                )
            else:
                _, names, measure_name, dense = self.similarity
                similarity = NameSimilarityMatrix(
                    names, attach_array(dense), measure_name
                )
        eval_context = None
        if self.eval_context is not None:
            from ..quality.compiled import EvalContext
            from ..sketch.stacked import StackedSketches

            spec = self.eval_context
            stacked = None
            if spec["stacked"] is not None:
                words, num_maps, map_bits, seed = spec["stacked"]
                stacked = StackedSketches(
                    attach_array(words), num_maps, map_bits, seed
                )
            eval_context = EvalContext(
                ids=attach_array(spec["ids"]),
                coop_mask=attach_array(spec["coop_mask"]),
                cards=attach_array(spec["cards"]),
                stacked=stacked,
                total_cardinality=spec["total_cardinality"],
                universe_distinct=spec["universe_distinct"],
                characteristics=spec["characteristics"],
                vector_names=spec["vector_names"],
            )
        return WorkerContext(
            self.problem,
            similarity=similarity,
            eval_context=eval_context,
            **self.fields,
        )


def export_context(
    context: WorkerContext,
) -> tuple["WorkerContext | _SharedContextPayload", SharedSegmentSet | None]:
    """``(transport, segments)``: a context readied for the pool pickle.

    When shared memory is usable and the context actually carries large
    arrays, returns a :class:`_SharedContextPayload` plus the live
    segment set the caller must :meth:`~repro.search.shm.
    SharedSegmentSet.close` when the solve's pool phase ends.  Otherwise
    — ``MUBE_SHM=0``, platform without shared memory, nothing to share,
    or the segments failing to allocate — returns the original context
    with ``None``, and the plain pickle path carries everything as
    before.
    """
    if not shm_available():
        return context, None
    segments = SharedSegmentSet()
    try:
        payload = _SharedContextPayload(context, segments)
    except OSError:
        # /dev/shm full or segment creation refused: degrade to pickle.
        segments.close()
        return context, None
    if not len(segments):
        segments.close()
        return context, None
    return payload, segments


# -- portfolio construction ---------------------------------------------------


def seeded_restarts(
    optimizer: str,
    count: int,
    base_config: OptimizerConfig | None = None,
) -> tuple[WorkerSpec, ...]:
    """``count`` restarts of one optimizer with consecutive seeds.

    Worker ``i`` gets ``base_config.seed + i``, so a portfolio is an
    explicit, reproducible function of the base seed — and the 0th worker
    runs the exact search a sequential solve with ``base_config`` would.
    """
    if count < 1:
        raise SearchError(f"portfolio needs at least one worker, got {count}")
    config = base_config or OptimizerConfig()
    return tuple(
        WorkerSpec(
            optimizer=optimizer,
            config=replace(config, seed=config.seed + i),
            label=f"{optimizer}[{i}]",
        )
        for i in range(count)
    )


def parse_portfolio(
    spec: str,
    base_config: OptimizerConfig | None = None,
) -> tuple[WorkerSpec, ...]:
    """Parse ``"tabu:4,local:2,annealing:2"`` into worker specs.

    Each comma-separated entry is ``name`` or ``name:count`` (count
    defaults to 1 when the colon is omitted).  Seeds are assigned
    consecutively across the *whole* portfolio — with base seed s, the
    example yields tabu seeds s..s+3, local s+4..s+5, annealing s+6..s+7
    — so the portfolio is reproducible and no two workers duplicate each
    other's search.

    Degenerate specs are rejected with a :class:`SearchError` naming the
    bad segment: empty segments (``"tabu:4,,local:2"``), empty names or
    counts (``":2"``, ``"tabu:"``), non-numeric or non-positive counts,
    and unknown optimizer names.
    """
    from . import OPTIMIZERS

    config = base_config or OptimizerConfig()
    workers: list[WorkerSpec] = []
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            raise SearchError(
                f"empty segment in portfolio {spec!r}; entries are "
                f"'name' or 'name:count', separated by single commas"
            )
        name, colon, count_text = entry.partition(":")
        name = name.strip()
        count_text = count_text.strip()
        if not name:
            raise SearchError(
                f"missing optimizer name in portfolio segment {entry!r}"
            )
        if name not in OPTIMIZERS:
            raise SearchError(
                f"unknown optimizer {name!r} in portfolio {spec!r}; "
                f"available: {', '.join(sorted(OPTIMIZERS))}"
            )
        if colon and not count_text:
            raise SearchError(
                f"missing worker count after ':' in portfolio segment "
                f"{entry!r}"
            )
        try:
            count = int(count_text) if count_text else 1
        except ValueError:
            raise SearchError(
                f"bad worker count {count_text!r} in portfolio entry "
                f"{entry!r}"
            ) from None
        if count < 1:
            raise SearchError(
                f"worker count must be >= 1 in portfolio entry {entry!r}"
            )
        for k in range(count):
            index = len(workers)
            workers.append(
                WorkerSpec(
                    optimizer=name,
                    config=replace(config, seed=config.seed + index),
                    label=f"{name}[{k}]",
                )
            )
    if not workers:
        raise SearchError(f"portfolio {spec!r} contains no workers")
    return tuple(workers)


def resolve_portfolio(
    portfolio: str | Sequence[WorkerSpec] | None,
    jobs: int,
    default_optimizer: str,
    base_config: OptimizerConfig | None = None,
) -> tuple[WorkerSpec, ...]:
    """Normalize the user-facing ``portfolio=`` argument to worker specs.

    ``None`` means "one seeded restart of the default optimizer per job",
    a string goes through :func:`parse_portfolio`, and an explicit spec
    sequence passes through untouched.
    """
    if portfolio is None:
        return seeded_restarts(default_optimizer, max(jobs, 1), base_config)
    if isinstance(portfolio, str):
        return parse_portfolio(portfolio, base_config)
    return tuple(portfolio)


# -- worker-process side ------------------------------------------------------

#: Per-process state installed by :func:`_worker_init`; module globals are
#: the one channel a ``ProcessPoolExecutor`` initializer can fill.
_WORKER_CONTEXT: WorkerContext | None = None
_WORKER_STOP = None
_WORKER_STARTED = None
_WORKER_HEARTBEATS = None


def _worker_init(
    context: WorkerContext, stop_event, started=None, heartbeats=None
) -> None:
    """Pool initializer: receive the shared context, neutralize inherited state.

    Under ``fork`` the child starts as a byte-for-byte copy of the parent,
    including any installed tracer with open file handles — so the first
    thing a worker does is reset the process-global telemetry and event
    log to their no-ops.  The shared early-stop event (picklable only
    through ``initargs``, never through the task queue) becomes this
    process's cooperative stop check.  ``started`` is the pool's shared
    execution ledger (see :func:`_run_worker`): one slot per portfolio
    worker, marked the moment an attempt actually begins executing, so
    the parent can tell a hung worker from one that never left the
    queue.  ``heartbeats`` is the engine's bounded heartbeat queue (see
    :mod:`repro.telemetry.observatory.heartbeat`), present only on
    observed solves; each :func:`_run_worker` attempt installs a scoped
    emitter over it.  The check stays installed for the
    process's whole life *by design*: a pool worker process only ever
    runs :func:`_run_worker` tasks, so there is no later in-process solve
    to leak into (in-process code must use
    :func:`~repro.search.base.stop_check_scope` instead).
    """
    global _WORKER_CONTEXT, _WORKER_STOP, _WORKER_STARTED
    global _WORKER_HEARTBEATS
    if isinstance(context, _SharedContextPayload):
        # The big arrays travelled as shared-memory refs; attach the
        # segments and rebuild the context over zero-copy views.
        context = context.materialize()
    _WORKER_CONTEXT = context
    _WORKER_STOP = stop_event
    _WORKER_STARTED = started
    _WORKER_HEARTBEATS = heartbeats
    set_telemetry(None)
    set_profiler(None)
    from ..explain.events import set_event_log

    set_event_log(None)
    if stop_event is not None:
        install_stop_check(stop_event.is_set)


def _execute_spec(context: WorkerContext, spec: WorkerSpec) -> SearchResult:
    """Rebuild the objective and run one worker's optimizer."""
    from . import resolve_optimizer_class

    cls = resolve_optimizer_class(spec.optimizer)
    objective = context.build_objective()
    initial = (
        frozenset(spec.initial)
        if spec.initial is not None
        else context.initial
    )
    return cls.run_from_config(
        objective,
        spec.config,
        initial=initial,
        **dict(spec.params),
    )


@contextmanager
def _profiler_scope(context: WorkerContext):
    """A worker-local :class:`PhaseProfiler` when the parent profiles.

    No-op unless the context asks for profiling.  The profiler records
    into whatever telemetry is current (the worker's own tracer inside
    :func:`_run_worker`), and its close — still inside the scope, before
    the metrics snapshot is taken — flushes the worker's cache totals so
    they ride the ordinary ``payload["metrics"]`` → ``merge_snapshot``
    path home.
    """
    if not context.profile:
        yield
        return
    profiler = PhaseProfiler(memory=context.profile_memory)
    profiler.start()
    try:
        with use_profiler(profiler):
            yield
    finally:
        profiler.close()


def _hit_quality_bound(result: SearchResult, bound: float | None) -> bool:
    """True iff a result satisfies the early-stop quality bound."""
    return (
        bound is not None
        and result.solution.feasible
        and result.solution.quality >= bound
    )


def _run_worker(index: int, spec: WorkerSpec, attempt: int = 0) -> dict:
    """Pool task: run one spec against the process-shared context.

    Returns a plain dict (cheap to pickle back): the result plus, when
    the parent traces, the worker's finished spans and metrics snapshot.
    Failures are caught and shipped home as strings so one bad worker
    can never poison the pool protocol.  The first act is to mark
    ``(index, attempt)`` as started in the shared ledger — a future can
    sit RUNNING in the executor's call-queue buffer without any process
    touching it, so this mark (not the future's state) is what tells the
    parent a timed-out worker actually consumed its budget.
    """
    context = _WORKER_CONTEXT
    assert context is not None, "worker used before _worker_init ran"
    if _WORKER_STARTED is not None:
        with _WORKER_STARTED.get_lock():
            if _WORKER_STARTED[index] < attempt + 1:
                _WORKER_STARTED[index] = attempt + 1
    exporter = InMemoryExporter()
    telemetry = (
        Telemetry(exporters=[exporter]) if context.collect_telemetry else None
    )
    if telemetry is not None:
        set_telemetry(telemetry)
    emitter = (
        HeartbeatEmitter(
            queue_sink(_WORKER_HEARTBEATS),
            worker=index,
            attempt=attempt,
            interval=context.heartbeat_interval,
        )
        if _WORKER_HEARTBEATS is not None
        else None
    )
    try:
        with _profiler_scope(context):
            if emitter is not None:
                with progress_hook_scope(emitter):
                    result = _execute_spec(context, spec)
            else:
                result = _execute_spec(context, spec)
    except Exception as exc:  # noqa: BLE001 - shipped home as the outcome
        return {"index": index, "error": f"{type(exc).__name__}: {exc}"}
    finally:
        if emitter is not None:
            emitter.close()
        if telemetry is not None:
            set_telemetry(None)
    payload: dict = {"index": index, "result": result}
    if telemetry is not None:
        payload["spans"] = tuple(exporter.spans)
        payload["metrics"] = telemetry.metrics.snapshot()
    if _WORKER_STOP is not None and _hit_quality_bound(
        result, context.stop_quality
    ):
        _WORKER_STOP.set()
    return payload


# -- deterministic merge ------------------------------------------------------


def _selection_key(result: SearchResult) -> tuple[int, ...]:
    """Canonical, order-independent identity of a result's selection."""
    return tuple(sorted(result.solution.selected))


def _beats(challenger: SearchResult, incumbent: SearchResult) -> bool:
    """Deterministic winner order: quality, then canonical selection key.

    Feasible beats infeasible at equal objective; at a full tie the
    lexicographically smallest selection key wins, and the caller keeps
    the earlier worker on identical keys — so the winner is a pure
    function of the worker list, not of scheduling.
    """
    a = (challenger.solution.objective, challenger.solution.feasible)
    b = (incumbent.solution.objective, incumbent.solution.feasible)
    if a != b:
        return a > b
    return _selection_key(challenger) < _selection_key(incumbent)


def select_winner(outcomes: Sequence[WorkerOutcome]) -> WorkerOutcome | None:
    """The winning outcome under the deterministic merge order."""
    winner: WorkerOutcome | None = None
    for outcome in sorted(outcomes, key=lambda o: o.index):
        if outcome.result is None:
            continue
        if winner is None or _beats(outcome.result, winner.result):
            winner = outcome
    return winner


class _HeartbeatDrain:
    """Parent-side pump from the heartbeat queue into a `RunStatus`.

    A daemon thread polls the bounded multiprocessing queue with a short
    timeout and folds each record into the status aggregate.  ``close``
    stops the thread, sweeps whatever is still buffered (so no heartbeat
    that arrived before shutdown is lost), and closes the queue.
    Stragglers from an abandoned hung pool may still try to put after
    that — their :func:`~repro.telemetry.observatory.heartbeat.offer`
    calls fail silently by contract, so a hung worker can never block on
    telemetry.
    """

    _POLL_SECONDS = 0.05

    def __init__(self, channel, status: RunStatus):
        self.channel = channel
        self.status = status
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._pump, name="mube-heartbeat-drain", daemon=True
        )
        self._thread.start()

    def _pump(self) -> None:
        while not self._stop.is_set():
            self._drain_one(block=True)

    def _drain_one(self, block: bool) -> bool:
        try:
            if block:
                heartbeat = self.channel.get(timeout=self._POLL_SECONDS)
            else:
                heartbeat = self.channel.get_nowait()
        except queue_module.Empty:
            return False
        except (OSError, ValueError, EOFError):
            # Queue closed or connection torn down mid-shutdown.
            self._stop.set()
            return False
        try:
            self.status.record_heartbeat(heartbeat)
        except Exception:  # noqa: BLE001 - observation must not sink solves
            pass
        return True

    def close(self) -> None:
        """Stop pumping, sweep the buffer, and close the queue."""
        self._stop.set()
        self._thread.join(timeout=2.0)
        while self._drain_one(block=False):
            pass
        try:
            self.channel.close()
        except (OSError, ValueError):
            pass


class _LocalStopFlag:
    """In-process stand-in for the multiprocessing early-stop event."""

    __slots__ = ("_set",)

    def __init__(self):
        self._set = False

    def set(self) -> None:
        self._set = True

    def is_set(self) -> bool:
        return self._set


# -- run bookkeeping ----------------------------------------------------------


class _PortfolioRun:
    """Mutable state of one resilient portfolio solve.

    Owns the final per-worker outcomes, the recovery counters, and the
    checkpoint progress map.  The engine's execution strategies feed it
    through :meth:`finish`; every finish updates the atomic best-so-far
    checkpoint when one is configured.
    """

    def __init__(
        self,
        specs: tuple[WorkerSpec, ...],
        context: WorkerContext,
        telemetry,
        resilience: ResilienceConfig,
        fingerprint: str | None,
        status: RunStatus | None = None,
    ):
        self.specs = specs
        self.context = context
        self.telemetry = telemetry
        self.resilience = resilience
        self.fingerprint = fingerprint
        self.status = status
        self.final: dict[int, WorkerOutcome] = {}
        self.progress: dict[int, WorkerProgress] = {
            index: WorkerProgress(
                index=index,
                optimizer=spec.optimizer,
                seed=spec.seed,
                label=spec.describe(),
            )
            for index, spec in enumerate(specs)
        }
        self.to_run: list[int] = list(range(len(specs)))
        self.retries = 0
        self.timeouts = 0
        self.requeues = 0
        self.pool_rebuilds = 0
        self.resumed_workers = 0
        self.checkpoints_written = 0

    # -- resume ---------------------------------------------------------------

    def restore(self, checkpoint: Checkpoint) -> None:
        """Adopt every finished worker from a checkpoint, re-running none.

        Completed workers' selections are re-evaluated against a fresh
        objective — evaluation is deterministic, so the restored solution
        is bit-identical to the one the killed run computed — and failed
        or timed-out workers are restored as their recorded outcomes.
        Pending workers stay in :attr:`to_run`.
        """
        objective: Objective | None = None
        for entry in checkpoint.workers:
            if not entry.finished:
                continue
            if entry.index >= len(self.specs):
                raise SearchError(
                    f"checkpoint worker {entry.index} does not exist in "
                    f"this portfolio of {len(self.specs)}"
                )
            spec = self.specs[entry.index]
            if entry.optimizer != spec.optimizer or entry.seed != spec.seed:
                raise SearchError(
                    f"checkpoint worker {entry.index} "
                    f"({entry.optimizer}, seed={entry.seed}) does not match "
                    f"this portfolio's spec "
                    f"({spec.optimizer}, seed={spec.seed}); resume needs "
                    f"the same portfolio the checkpoint was written for"
                )
            if entry.status == "ok":
                if objective is None:
                    objective = self.context.build_objective()
                # The top-level version guard cannot vouch for per-worker
                # payloads: a hand-edited snapshot, or one written by a
                # build with different SearchStats fields, must surface
                # as the SearchError contract, not a raw TypeError.
                try:
                    solution = objective.evaluate(frozenset(entry.selection))
                    result = SearchResult(
                        solution=solution,
                        stats=SearchStats(**entry.stats),
                        trajectory=tuple(entry.trajectory),
                    )
                except (TypeError, KeyError, ValueError, IndexError) as exc:
                    raise SearchError(
                        f"malformed checkpoint "
                        f"{self.resilience.checkpoint}: cannot restore "
                        f"worker {entry.index} ({exc})"
                    ) from exc
                outcome = WorkerOutcome(
                    index=entry.index,
                    label=spec.describe(),
                    optimizer=spec.optimizer,
                    seed=spec.seed,
                    result=result,
                    attempts=max(entry.attempts, 1),
                    resumed=True,
                )
            else:
                outcome = WorkerOutcome(
                    index=entry.index,
                    label=spec.describe(),
                    optimizer=spec.optimizer,
                    seed=spec.seed,
                    error=entry.error or entry.status,
                    timed_out=entry.status == "timed_out",
                    attempts=max(entry.attempts, 1),
                    resumed=True,
                )
            self.final[entry.index] = outcome
            self.progress[entry.index] = entry
            self.to_run.remove(entry.index)
            self.resumed_workers += 1
            if self.status is not None:
                self.status.record_outcome(outcome)

    # -- outcome intake -------------------------------------------------------

    def pending_items(self) -> list[tuple[int, WorkerSpec]]:
        """The workers still to execute, in submission order."""
        return [(index, self.specs[index]) for index in self.to_run]

    def finish(self, outcome: WorkerOutcome) -> None:
        """Record a worker's final outcome and checkpoint best-so-far."""
        self.final[outcome.index] = outcome
        self.progress[outcome.index] = self._progress_of(outcome)
        self._write_checkpoint()
        if self.status is not None:
            self.status.record_outcome(outcome)

    def outcomes(self) -> list[WorkerOutcome]:
        """All final outcomes, in worker order."""
        return [self.final[index] for index in sorted(self.final)]

    # -- checkpointing --------------------------------------------------------

    def _progress_of(self, outcome: WorkerOutcome) -> WorkerProgress:
        spec = self.specs[outcome.index]
        base = dict(
            index=outcome.index,
            optimizer=spec.optimizer,
            seed=spec.seed,
            label=spec.describe(),
            attempts=outcome.attempts,
        )
        if outcome.ok:
            stats = outcome.result.stats
            # Plain-int/float coercion keeps the snapshot JSON-safe even
            # when selections or trajectories carry numpy scalars.
            return WorkerProgress(
                status="ok",
                selection=tuple(
                    int(sid)
                    for sid in sorted(outcome.result.solution.selected)
                ),
                stats={
                    "iterations": int(stats.iterations),
                    "evaluations": int(stats.evaluations),
                    "elapsed_seconds": float(stats.elapsed_seconds),
                    "best_found_at": int(stats.best_found_at),
                    "match_memo_hits": int(stats.match_memo_hits),
                    "match_memo_misses": int(stats.match_memo_misses),
                },
                trajectory=tuple(
                    float(value) for value in outcome.result.trajectory
                ),
                **base,
            )
        return WorkerProgress(
            status="timed_out" if outcome.timed_out else "failed",
            error=outcome.error,
            **base,
        )

    def _write_checkpoint(self) -> None:
        path = self.resilience.checkpoint
        if path is None:
            return
        best = select_winner(list(self.final.values()))
        checkpoint = Checkpoint(
            fingerprint=self.fingerprint or "",
            workers=tuple(
                self.progress[index] for index in range(len(self.specs))
            ),
            best_selection=(
                tuple(int(s) for s in sorted(best.result.solution.selected))
                if best is not None
                else None
            ),
            best_objective=(
                float(best.result.solution.objective)
                if best is not None
                else None
            ),
            best_quality=(
                float(best.result.solution.quality)
                if best is not None
                else None
            ),
        )
        write_checkpoint(path, checkpoint)
        self.checkpoints_written += 1


# -- the engine ---------------------------------------------------------------


class ParallelSolveEngine:
    """Runs a portfolio of optimizer workers and merges deterministically.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) runs every worker in this
        process — no pool, no pickling — and is bit-identical to the
        sequential path, so ``jobs`` is a pure throughput knob.
    stop_quality:
        Optional early-stop bound: the first worker whose solution is
        feasible with ``quality >= stop_quality`` signals the others to
        wind down at their next iteration check.
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` uses the platform default.
    resilience:
        Recovery configuration (:class:`~repro.search.resilience.
        ResilienceConfig`): per-worker timeout, deterministic retry,
        checkpoint path, pool-rebuild budget.  The default config keeps
        every feature off, in which case the engine behaves exactly as
        it did before the resilience layer existed.
    status:
        Optional :class:`~repro.telemetry.observatory.status.RunStatus`
        to observe the solve live: workers heartbeat through a bounded
        lossy queue (pool mode) or directly (inline), and every
        lifecycle transition — submitted, retrying, finished, resumed —
        lands in the aggregate as it happens.  Purely observational:
        attaching a status never changes what the solve returns, and
        ``jobs=1`` stays bit-identical with one attached.
    heartbeat_interval:
        Minimum seconds between two heartbeats from one worker.
    """

    def __init__(
        self,
        jobs: int = 1,
        stop_quality: float | None = None,
        start_method: str | None = None,
        resilience: ResilienceConfig | None = None,
        status: RunStatus | None = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    ):
        if jobs < 1:
            raise SearchError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.stop_quality = stop_quality
        self.start_method = start_method
        self.resilience = resilience or ResilienceConfig()
        self.status = status
        self.heartbeat_interval = heartbeat_interval

    def solve(
        self,
        problem: Problem,
        workers: Iterable[WorkerSpec],
        similarity: NameSimilarityMatrix | None = None,
        initial: frozenset[int] | None = None,
        incremental: bool = False,
        eval_context=None,
    ) -> SearchResult:
        """Run the portfolio and return the winner, annotated with stats.

        The returned result is the winning worker's
        :class:`~repro.search.base.SearchResult` with its ``portfolio``
        field set to the run's :class:`PortfolioStats`.  When the
        resilience config names a checkpoint that already exists, the
        solve *resumes*: finished workers are restored from the snapshot
        (their best solutions bit-identical, no re-search), and only the
        unfinished work actually runs.  Unless the caller passed an
        explicit ``initial`` (which always wins), the best recorded
        selection warm-starts the remaining workers — so the killed
        run's best-so-far is never lost, but the *pending* workers may
        explore differently than the same solve left uninterrupted
        would have (see docs/resilience.md for the exact contract).
        """
        specs = tuple(workers)
        if not specs:
            raise SearchError("portfolio must contain at least one worker")
        from . import resolve_optimizer_class

        for name in sorted({spec.optimizer for spec in specs}):
            resolve_optimizer_class(name)
        telemetry = get_telemetry()
        fingerprint: str | None = None
        resume: Checkpoint | None = None
        if self.resilience.checkpoint is not None:
            fingerprint = problem_fingerprint(problem)
            resume = load_checkpoint(self.resilience.checkpoint)
            if resume is not None:
                if resume.fingerprint != fingerprint:
                    raise SearchError(
                        f"checkpoint {self.resilience.checkpoint} was "
                        f"written for a different problem (fingerprint "
                        f"{resume.fingerprint} != {fingerprint}); refusing "
                        f"to resume — delete the file to start fresh"
                    )
                if len(resume.workers) != len(specs):
                    raise SearchError(
                        f"checkpoint records {len(resume.workers)} workers "
                        f"but this portfolio has {len(specs)}; resume needs "
                        f"the same portfolio the checkpoint was written for"
                    )
                if resume.best_selection is not None and initial is None:
                    # Warm-start pending workers from the snapshot's
                    # best — but an explicit caller `initial` always
                    # wins over the checkpoint's.
                    initial = frozenset(resume.best_selection)
        profiler = get_profiler()
        context = WorkerContext(
            problem=problem,
            similarity=similarity,
            incremental=incremental,
            initial=initial,
            stop_quality=self.stop_quality,
            # Profiling rides the worker tracer home, so an enabled
            # profiler forces span/metrics collection even when the
            # parent isn't tracing (the data only survives when the
            # parent tracer is real — see repro.telemetry.profiler).
            collect_telemetry=telemetry.enabled or profiler.enabled,
            heartbeat_interval=self.heartbeat_interval,
            profile=profiler.enabled,
            profile_memory=getattr(profiler, "memory", False),
            eval_context=eval_context,
        )
        status = self.status
        if status is not None:
            status.begin(specs)
        run = _PortfolioRun(
            specs, context, telemetry, self.resilience, fingerprint,
            status=status,
        )
        started = time.perf_counter()
        with telemetry.span(
            "portfolio.solve", jobs=self.jobs, workers=len(specs)
        ) as span:
            if resume is not None:
                run.restore(resume)
            early_stopped = False
            if run.to_run:
                if self.jobs == 1:
                    early_stopped = self._solve_inline(run)
                else:
                    early_stopped = self._solve_pool(run)
            elapsed = time.perf_counter() - started
            with profiler.phase("merge"):
                outcomes = run.outcomes()
                winner = select_winner(outcomes)
            if winner is None:
                reasons = "; ".join(
                    f"worker {o.index} ({o.label}): {o.error}"
                    for o in outcomes
                )
                raise SearchError(
                    f"all {len(outcomes)} portfolio workers failed: "
                    f"{reasons}"
                )
            stats = PortfolioStats(
                jobs=self.jobs,
                workers=tuple(sorted(outcomes, key=lambda o: o.index)),
                winner_index=winner.index,
                elapsed_seconds=elapsed,
                early_stopped=early_stopped,
                retries=run.retries,
                timeouts=run.timeouts,
                requeues=run.requeues,
                pool_rebuilds=run.pool_rebuilds,
                resumed_workers=run.resumed_workers,
            )
            span.set(
                winner=winner.index,
                failed=stats.failed_workers,
                early_stopped=early_stopped,
                best_objective=winner.result.solution.objective,
                retries=run.retries,
                timeouts=run.timeouts,
                resumed=run.resumed_workers,
            )
            metrics = telemetry.metrics
            metrics.counter("portfolio.solves").inc()
            metrics.counter("portfolio.workers").inc(len(specs))
            metrics.counter("portfolio.workers_failed").inc(
                stats.failed_workers
            )
            metrics.counter("portfolio.retries").inc(run.retries)
            metrics.counter("portfolio.timeouts").inc(run.timeouts)
            metrics.counter("portfolio.requeues").inc(run.requeues)
            metrics.counter("portfolio.pool_rebuilds").inc(run.pool_rebuilds)
            metrics.counter("portfolio.resumed_workers").inc(
                run.resumed_workers
            )
            metrics.counter("portfolio.checkpoints").inc(
                run.checkpoints_written
            )
            if status is not None:
                if early_stopped:
                    status.mark_early_stop()
                status.finish()
                metrics.counter("portfolio.heartbeats").inc(
                    status.heartbeats
                )
            if early_stopped:
                metrics.counter("portfolio.early_stops").inc()
            for outcome in stats.workers:
                if outcome.ok and not outcome.resumed:
                    metrics.histogram("portfolio.worker_seconds").observe(
                        outcome.result.stats.elapsed_seconds
                    )
        return replace(winner.result, portfolio=stats)

    # -- execution strategies -------------------------------------------------

    def _solve_inline(self, run: _PortfolioRun) -> bool:
        """Run every pending worker in this process, in submission order.

        Identical semantics to the pool path — fresh objective per
        worker, same early-stop bound, same retry/timeout accounting —
        minus the process boundary, so ``jobs=1`` results match
        ``jobs=N`` results exactly.  Telemetry needs no folding: workers
        trace straight into the live tracer.  The cooperative stop check
        is installed through :func:`~repro.search.base.stop_check_scope`,
        so it can never leak past this solve, raised exceptions included.
        """
        flag = _LocalStopFlag()
        if self.stop_quality is not None:
            with stop_check_scope(flag.is_set):
                self._run_inline_batch(run, run.pending_items(), flag)
        else:
            self._run_inline_batch(run, run.pending_items(), flag)
        return flag.is_set()

    def _run_inline_batch(
        self,
        run: _PortfolioRun,
        items: Sequence[tuple[int, WorkerSpec]],
        stop_flag,
        start_attempts: Mapping[int, int] | None = None,
    ) -> None:
        """Execute workers in-process, with per-worker retry/timeout."""
        for index, spec in items:
            start = (start_attempts or {}).get(index, 0)
            outcome = self._run_attempts_inline(
                run, index, spec, stop_flag, start_attempt=start
            )
            run.finish(outcome)

    def _run_attempts_inline(
        self,
        run: _PortfolioRun,
        index: int,
        spec: WorkerSpec,
        stop_flag,
        start_attempt: int = 0,
    ) -> WorkerOutcome:
        """One worker's attempt loop, in-process.

        The wall-clock timeout here is post-hoc: without a process
        boundary a running optimizer cannot be preempted, so an attempt
        that *returns* after overrunning the budget is discarded and
        recorded as timed out — keeping inline outcomes consistent with
        what the pool path would have recorded for the same schedule.
        """
        policy = self.resilience.retry
        timeout = self.resilience.worker_timeout
        attempt = start_attempt
        while True:
            live = respec_for_attempt(spec, index, attempt, policy.reseed)
            if attempt > 0:
                with run.telemetry.span(
                    "portfolio.retry",
                    worker=index,
                    attempt=attempt,
                    mode="inline",
                ):
                    delay = policy.delay(attempt)
                    if delay:
                        time.sleep(delay)
            started = time.perf_counter()
            error: str | None = None
            timed_out = False
            result: SearchResult | None = None
            emitter = None
            if run.status is not None:
                run.status.mark_running(index, attempt)
                emitter = HeartbeatEmitter(
                    run.status.record_heartbeat,
                    worker=index,
                    attempt=attempt,
                    interval=self.heartbeat_interval,
                )
            try:
                if emitter is not None:
                    with progress_hook_scope(emitter):
                        result = _execute_spec(run.context, live)
                else:
                    result = _execute_spec(run.context, live)
            except SystemExit as exc:
                error = f"SystemExit: {exc.code}"
            except Exception as exc:  # noqa: BLE001 - per-worker outcome
                error = f"{type(exc).__name__}: {exc}"
            else:
                elapsed = time.perf_counter() - started
                if timeout is not None and elapsed > timeout:
                    error = (
                        f"timed out: ran {elapsed:.2f}s against a "
                        f"{timeout}s budget"
                    )
                    timed_out = True
                    run.timeouts += 1
                    result = None
            if emitter is not None:
                emitter.close()
            if result is not None:
                if _hit_quality_bound(result, self.stop_quality):
                    stop_flag.set()
                return self._success(
                    index, spec, result, attempts=attempt + 1
                )
            if attempt < policy.max_retries:
                attempt += 1
                run.retries += 1
                if run.status is not None:
                    run.status.mark_retrying(
                        index, attempt, error or "retrying"
                    )
                continue
            return self._failure(
                index,
                spec,
                error,
                timed_out=timed_out,
                attempts=attempt + 1,
            )

    def _solve_pool(self, run: _PortfolioRun) -> bool:
        """Fan the workers out across a process pool and gather outcomes.

        Collection is round-based: each round submits every queued
        ``(worker, attempt)``, then collects in submission order with a
        per-worker wall-clock timeout.  Failed and timed-out workers are
        requeued for the next round while their retry budget lasts; a
        worker whose future times out *before it ever started running*
        (pure queue wait) is requeued at the same attempt with no budget
        charged.  A pool left holding a timed-out task that was already
        executing is abandoned — replaced with a fresh pool for later
        rounds and shut down without joining, so a genuinely hung worker
        can delay the solve by at most one timeout, never block it.  A
        :class:`BrokenProcessPool` rebuilds the pool once (requeueing
        everything uncollected); if the rebuilt pool breaks too, the
        remaining workers degrade to the in-process path, so a solve
        survives even a machine that cannot keep a process pool alive.
        """
        mp_context = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else multiprocessing.get_context()
        )
        stop_event = (
            mp_context.Event() if self.stop_quality is not None else None
        )
        heartbeat_channel = (
            mp_context.Queue(HEARTBEAT_QUEUE_SIZE)
            if run.status is not None
            else None
        )
        drain = (
            _HeartbeatDrain(heartbeat_channel, run.status)
            if heartbeat_channel is not None
            else None
        )
        policy = self.resilience.retry
        timeout = self.resilience.worker_timeout
        telemetry = run.telemetry
        launch_offset = telemetry.now()
        pending: deque[tuple[int, WorkerSpec, int]] = deque(
            (index, spec, 0) for index, spec in run.pending_items()
        )
        rebuilds_left = self.resilience.pool_rebuilds
        leftovers: list[tuple[int, WorkerSpec, int]] = []
        # True while the *live* pool still hosts a timed-out task that
        # was already executing when its future missed the deadline
        # (future.cancel() cannot stop a running task).  Such a pool is
        # never joined — shutdown(wait=True) would block on the hung
        # task, possibly forever — and never reused: its slot is held
        # hostage, which would starve every later round.
        pool_hung = False
        # The context's large arrays go to shared memory once per solve;
        # every pool generation (rotation, broken-pool rebuild) attaches
        # the same segments, and the finally below unlinks them.
        transport, shm_segments = export_context(run.context)
        metrics = telemetry.metrics
        if shm_segments is not None:
            metrics.counter("portfolio.shm_segments").inc(len(shm_segments))
            metrics.counter("portfolio.shm_bytes").inc(
                shm_segments.total_bytes()
            )
        else:
            metrics.counter("portfolio.shm_fallbacks").inc()
        pool, started = self._new_pool(
            mp_context, run, stop_event, heartbeat_channel, transport
        )
        try:
            while pending:
                batch = list(pending)
                pending.clear()
                futures = []
                broken_at: int | None = None
                for slot, (index, spec, attempt) in enumerate(batch):
                    live = respec_for_attempt(
                        spec, index, attempt, policy.reseed
                    )
                    if attempt > 0:
                        with telemetry.span(
                            "portfolio.retry",
                            worker=index,
                            attempt=attempt,
                            mode="pool",
                        ):
                            delay = policy.delay(attempt)
                            if delay:
                                time.sleep(delay)
                    if run.status is not None:
                        run.status.mark_running(index, attempt)
                    try:
                        futures.append(
                            pool.submit(_run_worker, index, live, attempt)
                        )
                    except (BrokenProcessPool, RuntimeError):
                        # The pool died before this round even launched:
                        # nothing submitted this round can be trusted.
                        broken_at = 0
                        break
                if broken_at is None:
                    broken_at, abandoned = self._collect_round(
                        run, batch, futures, pending, timeout, policy,
                        launch_offset, started,
                    )
                    if abandoned:
                        pool_hung = True
                if broken_at is not None:
                    uncollected = batch[broken_at:]
                    pool.shutdown(wait=False, cancel_futures=True)
                    if rebuilds_left > 0:
                        rebuilds_left -= 1
                        run.pool_rebuilds += 1
                        run.requeues += len(uncollected)
                        pending = deque(uncollected) + pending
                        pool, started = self._new_pool(
                            mp_context, run, stop_event, heartbeat_channel,
                            transport,
                        )
                        pool_hung = False
                    else:
                        leftovers = list(uncollected) + list(pending)
                        run.requeues += len(uncollected)
                        pending = deque()
                        pool = None
                        break
                elif pool_hung and pending:
                    # Rotate away from the hostage pool so retries and
                    # requeued bystanders run on fresh processes.  This
                    # is a deliberate replacement, not breakage, so it
                    # does not spend the BrokenProcessPool rebuild
                    # budget — but it is still counted, because an
                    # operator should see every pool the engine paid to
                    # re-create.
                    pool.shutdown(wait=False, cancel_futures=True)
                    run.pool_rebuilds += 1
                    pool, started = self._new_pool(
                        mp_context, run, stop_event, heartbeat_channel,
                        transport,
                    )
                    pool_hung = False
        finally:
            if pool is not None:
                pool.shutdown(wait=not pool_hung, cancel_futures=True)
            if shm_segments is not None:
                # Unlink now that no new pool generation can attach;
                # workers still mapped (even hung ones) keep their views
                # until they exit, but the /dev/shm names are gone.
                shm_segments.close()
            if drain is not None:
                drain.close()
        if leftovers:
            self._finish_inline_fallback(run, leftovers, stop_event)
        return stop_event.is_set() if stop_event is not None else False

    def _collect_round(
        self,
        run: _PortfolioRun,
        batch: list[tuple[int, WorkerSpec, int]],
        futures: list,
        pending: deque,
        timeout: float | None,
        policy,
        launch_offset: float,
        started=None,
    ) -> tuple[int | None, bool]:
        """Collect one round of futures in submission order.

        Returns ``(broken_at, abandoned)``: ``broken_at`` is None when
        the whole round was collected, or the batch slot at which a
        :class:`BrokenProcessPool` surfaced (everything from that slot
        on is uncollected and must be requeued); ``abandoned`` is True
        when a timed-out task still occupies the pool — running in one
        of its processes, or parked in its call-queue buffer where a
        cancel can no longer reach it — so the caller must neither join
        nor reuse that pool.
        """
        telemetry = run.telemetry
        abandoned = False
        for slot, future in enumerate(futures):
            index, spec, attempt = batch[slot]
            try:
                payload = future.result(timeout=timeout)
            except FuturesTimeout:
                cancelled = future.cancel()
                if started is not None and started[index] <= attempt:
                    # The attempt never began executing — the clock
                    # measured queue wait (e.g. behind a hung slot), not
                    # this worker's work.  (The shared ledger is the
                    # authority here: the future itself reads RUNNING as
                    # soon as it enters the executor's call-queue
                    # buffer, long before any process touches it.)
                    # Innocent bystanders don't burn retry budget:
                    # requeue at the same attempt, mirroring the
                    # broken-pool policy.  If the cancel failed the task
                    # is still buffered in this pool's call queue and
                    # would eventually run there too — mark the pool
                    # abandoned so the round rotates away from it.
                    run.requeues += 1
                    pending.append((index, spec, attempt))
                    if not cancelled:
                        abandoned = True
                    continue
                abandoned = True
                run.timeouts += 1
                error = f"timed out after {timeout}s"
                if attempt < policy.max_retries:
                    run.retries += 1
                    pending.append((index, spec, attempt + 1))
                    if run.status is not None:
                        run.status.mark_retrying(index, attempt + 1, error)
                else:
                    run.finish(
                        self._failure(
                            index, spec, error,
                            timed_out=True, attempts=attempt + 1,
                        )
                    )
                continue
            except BrokenProcessPool:
                return slot, abandoned
            except Exception as exc:  # noqa: BLE001 - e.g. pickling errors
                self._retry_or_finish(
                    run, pending, index, spec, attempt,
                    f"{type(exc).__name__}: {exc}",
                )
                continue
            error = payload.get("error")
            if error is not None:
                self._retry_or_finish(
                    run, pending, index, spec, attempt, error
                )
                continue
            telemetry.absorb(
                payload.get("spans", ()),
                payload.get("metrics"),
                offset=launch_offset,
            )
            run.finish(
                self._success(
                    index, spec, payload["result"], attempts=attempt + 1
                )
            )
        return None, abandoned

    def _retry_or_finish(
        self,
        run: _PortfolioRun,
        pending: deque,
        index: int,
        spec: WorkerSpec,
        attempt: int,
        error: str,
    ) -> None:
        """Requeue a failed attempt while the retry budget lasts."""
        if attempt < self.resilience.retry.max_retries:
            run.retries += 1
            pending.append((index, spec, attempt + 1))
            if run.status is not None:
                run.status.mark_retrying(index, attempt + 1, error)
        else:
            run.finish(
                self._failure(index, spec, error, attempts=attempt + 1)
            )

    def _finish_inline_fallback(
        self,
        run: _PortfolioRun,
        leftovers: list[tuple[int, WorkerSpec, int]],
        stop_event,
    ) -> None:
        """Degrade gracefully: run the pool's leftovers in-process.

        Reached only when the process pool broke more times than the
        rebuild budget allows.  The shared early-stop event keeps
        working: it becomes this process's cooperative stop check for
        the duration (scoped, so nothing leaks), and in-process workers
        that hit the bound still signal it.
        """
        flag = stop_event if stop_event is not None else _LocalStopFlag()
        items = [(index, spec) for index, spec, _ in leftovers]
        start_attempts = {index: attempt for index, _, attempt in leftovers}
        if stop_event is not None:
            with stop_check_scope(stop_event.is_set):
                self._run_inline_batch(run, items, flag, start_attempts)
        else:
            self._run_inline_batch(run, items, flag, start_attempts)

    def _new_pool(
        self, mp_context, run: _PortfolioRun, stop_event,
        heartbeat_channel=None, transport=None,
    ) -> tuple[ProcessPoolExecutor, "object | None"]:
        """A fresh worker pool plus its shared execution ledger.

        The ledger (one int per portfolio worker, ``attempt + 1`` of the
        highest attempt that actually began executing) is created with
        the pool and shipped through ``initargs``, so it is scoped to
        exactly this pool's processes — a rotated-away pool keeps
        writing to its own ledger, never the replacement's.  Only built
        when a worker timeout is configured; nothing else reads it.
        The heartbeat channel and the context transport (plain
        :class:`WorkerContext` or, when shared memory is on, the
        :class:`_SharedContextPayload` over the solve's segments), by
        contrast, are created once per solve and shared across pool
        generations: a rotated-away pool's stragglers may keep pulsing
        into the channel, which is harmless (late heartbeats for
        terminal workers are counted and ignored), and every generation
        attaches the same immutable segments.
        """
        started = (
            mp_context.Array("i", len(run.specs))
            if self.resilience.worker_timeout is not None
            else None
        )
        pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=mp_context,
            initializer=_worker_init,
            initargs=(
                transport if transport is not None else run.context,
                stop_event,
                started,
                heartbeat_channel,
            ),
        )
        return pool, started

    @staticmethod
    def _success(
        index: int,
        spec: WorkerSpec,
        result: SearchResult,
        attempts: int = 1,
    ) -> WorkerOutcome:
        return WorkerOutcome(
            index=index,
            label=spec.describe(),
            optimizer=spec.optimizer,
            seed=spec.seed,
            result=result,
            attempts=attempts,
        )

    @staticmethod
    def _failure(
        index: int,
        spec: WorkerSpec,
        error: str,
        timed_out: bool = False,
        attempts: int = 1,
    ) -> WorkerOutcome:
        return WorkerOutcome(
            index=index,
            label=spec.describe(),
            optimizer=spec.optimizer,
            seed=spec.seed,
            error=error,
            timed_out=timed_out,
            attempts=attempts,
        )

    def __repr__(self) -> str:
        return (
            f"ParallelSolveEngine(jobs={self.jobs}, "
            f"stop_quality={self.stop_quality})"
        )


def render_portfolio(stats: PortfolioStats) -> str:
    """A small human-readable table over a portfolio's workers."""
    header = (
        f"portfolio: {len(stats.workers)} workers, jobs={stats.jobs}, "
        f"{stats.elapsed_seconds:.2f}s"
    )
    if stats.early_stopped:
        header += ", early stop"
    recovery = []
    if stats.retries:
        recovery.append(f"retries={stats.retries}")
    if stats.timeouts:
        recovery.append(f"timeouts={stats.timeouts}")
    if stats.pool_rebuilds:
        recovery.append(f"pool rebuilds={stats.pool_rebuilds}")
    if stats.resumed_workers:
        recovery.append(f"resumed={stats.resumed_workers}")
    if recovery:
        header += " (" + ", ".join(recovery) + ")"
    lines = [header]
    for outcome in stats.workers:
        marker = "*" if outcome.index == stats.winner_index else " "
        suffix = ""
        if outcome.attempts > 1:
            suffix += f" [{outcome.attempts} attempts]"
        if outcome.resumed:
            suffix += " [resumed]"
        if outcome.ok:
            solution = outcome.result.solution
            lines.append(
                f" {marker} [{outcome.index}] {outcome.label:<16} "
                f"Q={solution.quality:.4f} "
                f"iters={outcome.result.stats.iterations} "
                f"{outcome.result.stats.elapsed_seconds:.2f}s" + suffix
            )
        else:
            status = "TIMED OUT" if outcome.timed_out else "FAILED"
            lines.append(
                f" {marker} [{outcome.index}] {outcome.label:<16} "
                f"{status}: {outcome.error}" + suffix
            )
    return "\n".join(lines)


__all__ = [
    "ParallelSolveEngine",
    "PortfolioStats",
    "WorkerContext",
    "WorkerOutcome",
    "WorkerSpec",
    "parse_portfolio",
    "render_portfolio",
    "resolve_portfolio",
    "seeded_restarts",
    "select_winner",
]
