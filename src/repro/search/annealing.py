"""Constrained simulated annealing — one of the paper's rejected baselines.

Standard Metropolis acceptance over the add/drop/swap neighborhood with a
geometric cooling schedule.  Constraints are enforced structurally by the
move generator, so every visited selection honours ``C`` and ``m``.  The
paper reports that tabu search beat this (and the other metaheuristics);
:mod:`benchmarks.bench_optimizers` reproduces that comparison.
"""

from __future__ import annotations

import math

from ..quality.overall import Objective
from .base import (
    Optimizer,
    OptimizerConfig,
    RunClock,
    SearchResult,
    SearchStats,
    required_ids,
)
from .neighborhood import Neighborhood


class SimulatedAnnealing(Optimizer):
    """Metropolis sampling with geometric cooling."""

    name = "annealing"

    def __init__(
        self,
        config: OptimizerConfig | None = None,
        initial_temperature: float = 0.05,
        cooling: float = 0.995,
        steps_per_iteration: int = 8,
    ):
        super().__init__(config)
        if not 0.0 < cooling < 1.0:
            raise ValueError(f"cooling must be in (0, 1), got {cooling}")
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self.steps_per_iteration = steps_per_iteration

    def _optimize(
        self,
        objective: Objective,
        initial: frozenset[int] | None = None,
    ) -> SearchResult:
        rng = self._rng()
        clock = RunClock(self.config.time_limit)
        problem = objective.problem
        neighborhood = Neighborhood(
            problem.universe.source_ids,
            required_ids(objective),
            problem.max_sources,
        )

        current = objective.evaluate(
            self._start_selection(objective, initial, rng)
        )
        best = current
        best_found_at = 0
        temperature = self.initial_temperature
        trajectory = [best.objective]
        iterations = 0
        stale = 0

        for iteration in range(1, self.config.max_iterations + 1):
            if clock.expired() or stale >= self.config.patience:
                break
            iterations = iteration
            improved = False
            for _ in range(self.steps_per_iteration):
                # Inherently sequential: the Metropolis test conditions the
                # next move on this one's outcome, so candidates go through
                # the batch API one at a time.
                move = neighborhood.random_move(current.selected, rng)
                if move is None:
                    break
                candidate = self._score(
                    objective, [move.apply(current.selected)]
                )[0]
                delta = candidate.objective - current.objective
                if delta >= 0 or rng.random() < math.exp(
                    delta / max(temperature, 1e-12)
                ):
                    current = candidate
                if current.objective > best.objective:
                    best = current
                    best_found_at = iteration
                    improved = True
            temperature *= self.cooling
            stale = 0 if improved else stale + 1
            trajectory.append(best.objective)

        stats = SearchStats(
            iterations=iterations,
            evaluations=objective.evaluations,
            elapsed_seconds=clock.elapsed(),
            best_found_at=best_found_at,
        )
        return SearchResult(best, stats, tuple(trajectory))
