"""Shared optimizer machinery.

Every optimizer maximizes the objective over selections ``S ⊆ U`` with
``C ⊆ S`` and ``|S| ≤ m``.  The constraints are enforced *structurally* —
move generators never produce a selection that drops a constrained source
or exceeds the budget, which is how the paper's "permanently tabu regions"
are realized — while schema-level feasibility (the matching operator's
NULL result) is handled through the objective's discounted score.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from ..core import Solution, worst_solution
from ..exceptions import SearchError
from ..quality.overall import Objective
from ..telemetry import get_profiler, get_telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .parallel import PortfolioStats


#: **Thread-local** cooperative hook storage.  The stop check is consulted
#: by every :class:`RunClock`; the progress hook by
#: :func:`score_candidates`.  Both default to ``None`` — plain solves
#: never pay for them and stay bit-identical.  The storage is thread-local
#: rather than a plain module global so that a resident multi-tenant
#: service (``repro.serve``) can run solves on concurrent threads without
#: crosstalk: an in-process portfolio installing its early-stop flag on
#: one request thread must not truncate a sequential solve running on
#: another.  Pool worker processes are unaffected — their initializer and
#: their tasks both run on the worker's main thread, so an install in the
#: initializer is visible exactly where it always was.
_hooks = threading.local()


def current_stop_check() -> Callable[[], bool] | None:
    """The calling thread's installed stop check, or ``None``."""
    return getattr(_hooks, "stop_check", None)


def current_progress_hook() -> (
    Callable[[Sequence[Solution]], None] | None
):
    """The calling thread's installed progress hook, or ``None``."""
    return getattr(_hooks, "progress_hook", None)


def install_stop_check(check: Callable[[], bool] | None):
    """Install (or clear, with ``None``) the cooperative stop signal.

    Returns the previously installed check so nested scopes can restore
    it.  Optimizers observe the signal at their next ``clock.expired()``
    call — iteration granularity, which is why losing the signal can only
    cost runtime, never correctness.  The installation is **per thread**
    (see :data:`_hooks`).
    """
    previous = current_stop_check()
    _hooks.stop_check = check
    return previous


def clear_stop_check() -> None:
    """Remove any installed cooperative stop signal."""
    install_stop_check(None)


@contextmanager
def stop_check_scope(
    check: Callable[[], bool] | None,
) -> Iterator[Callable[[], bool] | None]:
    """Install a cooperative stop check for the duration of a block.

    The previous check is restored on exit *no matter how the block
    ends* — this is the only sanctioned way to install a stop check
    around in-process work.  A check left behind by an exception would
    silently truncate every later solve in the process (the leak class
    this guards against), because :meth:`RunClock.expired` consults the
    global on every optimizer iteration.
    """
    previous = install_stop_check(check)
    try:
        yield previous
    finally:
        install_stop_check(previous)


def install_progress_hook(
    hook: Callable[[Sequence[Solution]], None] | None,
):
    """Install (or clear, with ``None``) the candidate-batch progress hook.

    Returns the previously installed hook so nested scopes can restore
    it.  The hook is called by :func:`score_candidates` with each scored
    batch — every optimizer routes its neighborhoods through there, so no
    optimizer loop needs to know heartbeats exist.  Hook exceptions are
    swallowed at the call site: observation must never sink a solve.
    The installation is **per thread** (see :data:`_hooks`).
    """
    previous = current_progress_hook()
    _hooks.progress_hook = hook
    return previous


def clear_progress_hook() -> None:
    """Remove any installed progress hook."""
    install_progress_hook(None)


@contextmanager
def progress_hook_scope(
    hook: Callable[[Sequence[Solution]], None] | None,
) -> Iterator[Callable[[Sequence[Solution]], None] | None]:
    """Install a progress hook for the duration of a block.

    Mirrors :func:`stop_check_scope`: the previous hook is restored no
    matter how the block ends, so a crashing worker attempt cannot leak
    its emitter into later solves in the same process.
    """
    previous = install_progress_hook(hook)
    try:
        yield previous
    finally:
        install_progress_hook(previous)


@dataclass(frozen=True, slots=True)
class OptimizerConfig:
    """Knobs shared by all optimizers.

    Attributes
    ----------
    max_iterations:
        Hard cap on optimizer iterations.
    patience:
        Stop after this many consecutive iterations without improving the
        best solution.
    seed:
        Seed for the optimizer's private RNG; runs are deterministic.
    time_limit:
        Optional wall-clock budget in seconds.
    sample_size:
        How many ADD candidates a neighborhood samples per iteration
        (0 means all of them).
    batch:
        Route candidate scoring through the objective's columnar
        :meth:`~repro.quality.Objective.evaluate_batch` (the default).
        ``False`` scores candidates one at a time through the scalar
        evaluator — the property-tested reference path; trajectories are
        identical either way, seed for seed.
    """

    max_iterations: int = 150
    patience: int = 25
    seed: int = 0
    time_limit: float | None = None
    sample_size: int = 48
    batch: bool = True


@dataclass(frozen=True, slots=True)
class SearchStats:
    """Bookkeeping about one optimizer run.

    ``match_memo_hits``/``match_memo_misses`` count this run's traffic on
    the match operator's selection memo — the reason a warm re-solve in a
    feedback loop is faster than the first solve.  They default to 0 for
    optimizers constructed against bare callables in tests.
    """

    iterations: int
    evaluations: int
    elapsed_seconds: float
    best_found_at: int
    match_memo_hits: int = 0
    match_memo_misses: int = 0


@dataclass(frozen=True, slots=True)
class SearchResult:
    """An optimizer's best solution plus run statistics.

    ``portfolio`` is only populated on results returned by the parallel
    engine (:class:`repro.search.parallel.ParallelSolveEngine`): the
    winning worker's result is annotated with the whole portfolio's
    :class:`~repro.search.parallel.PortfolioStats`.
    """

    solution: Solution
    stats: SearchStats
    trajectory: tuple[float, ...] = field(default=())
    portfolio: "PortfolioStats | None" = None

    @property
    def objective(self) -> float:
        """Shortcut to the best solution's objective value."""
        return self.solution.objective


class Optimizer(ABC):
    """Base class for combinatorial optimizers over source subsets."""

    #: Registry name, set by subclasses.
    name: str = "abstract"

    def __init__(self, config: OptimizerConfig | None = None):
        self.config = config or OptimizerConfig()

    def optimize(
        self,
        objective: Objective,
        initial: frozenset[int] | None = None,
    ) -> SearchResult:
        """Run the search and return the best solution found.

        ``initial`` warm-starts the search from a previous iteration's
        selection — the natural mode for µBE's solve/adjust/re-solve loop,
        where consecutive problems differ only by a constraint or a weight
        and the previous answer is an excellent starting point.  Optimizers
        that have no meaningful start state (random, exhaustive) ignore it.

        This is a template method: it opens the ``search.solve`` span,
        delegates to the subclass's :meth:`_optimize`, and folds the run's
        match-memo traffic and run-level counters into the result.
        """
        telemetry = get_telemetry()
        operator = getattr(objective, "match_operator", None)
        hits_before = getattr(operator, "memo_hits", 0)
        misses_before = getattr(operator, "memo_misses", 0)
        with get_profiler().phase("search"), telemetry.span(
            "search.solve", optimizer=self.name
        ) as span:
            result = self._optimize(objective, initial)
            span.set(
                iterations=result.stats.iterations,
                best_objective=result.solution.objective,
            )
        stats = replace(
            result.stats,
            match_memo_hits=getattr(operator, "memo_hits", 0) - hits_before,
            match_memo_misses=(
                getattr(operator, "memo_misses", 0) - misses_before
            ),
        )
        metrics = telemetry.metrics
        metrics.counter("search.solves").inc()
        metrics.counter("search.iterations").inc(stats.iterations)
        metrics.gauge("search.time_to_best_iteration").set(
            stats.best_found_at
        )
        metrics.histogram("search.solve_seconds").observe(
            stats.elapsed_seconds
        )
        return replace(result, stats=stats)

    @classmethod
    def run_from_config(
        cls,
        objective: Objective,
        config: OptimizerConfig | None = None,
        initial: frozenset[int] | None = None,
        **params: Any,
    ) -> SearchResult:
        """Construct this optimizer from plain data and run it.

        The entrypoint portfolio workers use: everything needed to
        reproduce a run — class, config, extra constructor ``params``,
        warm start — arrives as picklable values, so a worker process can
        rebuild and execute the exact search the parent described.
        Equivalent to ``cls(config, **params).optimize(objective,
        initial=initial)``.
        """
        return cls(config, **params).optimize(objective, initial=initial)

    @abstractmethod
    def _optimize(
        self,
        objective: Objective,
        initial: frozenset[int] | None = None,
    ) -> SearchResult:
        """Subclass hook: the actual search (see :meth:`optimize`)."""

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.config.seed)

    def _score(
        self,
        objective: Objective,
        selections: Sequence[frozenset[int]],
    ) -> list[Solution]:
        """Score a candidate batch, honouring the config's ``batch`` flag."""
        return score_candidates(objective, selections, self.config.batch)

    def _start_selection(
        self,
        objective: Objective,
        initial: frozenset[int] | None,
        rng: np.random.Generator,
    ) -> frozenset[int]:
        """Resolve the starting selection: repaired warm start, or random."""
        if initial is None:
            return random_selection(objective, rng)
        return repair_selection(objective, initial, rng)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.config!r})"


class RunClock:
    """Tracks elapsed time against an optional budget."""

    __slots__ = ("_start", "_limit")

    def __init__(self, time_limit: float | None):
        self._start = time.perf_counter()
        self._limit = time_limit

    def elapsed(self) -> float:
        """Seconds since the run started."""
        return time.perf_counter() - self._start

    def expired(self) -> bool:
        """True iff the time budget is spent or a sibling signalled stop.

        The cooperative stop check (see :func:`install_stop_check`) is
        folded in here because every optimizer already consults its clock
        once per iteration — portfolio early-stop therefore needs no
        changes to any optimizer's loop.
        """
        check = current_stop_check()
        if check is not None and check():
            return True
        return self._limit is not None and self.elapsed() >= self._limit


def required_ids(objective: Objective) -> frozenset[int]:
    """Sources every feasible selection must contain (C plus GA-implied)."""
    return objective.problem.effective_source_constraints


def free_ids(objective: Objective) -> tuple[int, ...]:
    """Sources the optimizer may freely add or drop, sorted for determinism."""
    required = required_ids(objective)
    return tuple(
        sid for sid in sorted(objective.universe.source_ids)
        if sid not in required
    )


def random_selection(
    objective: Objective, rng: np.random.Generator
) -> frozenset[int]:
    """A uniformly random selection of exactly ``m`` sources honouring C."""
    selection = set(required_ids(objective))
    pool = free_ids(objective)
    extra = objective.problem.max_sources - len(selection)
    if extra > 0 and pool:
        take = min(extra, len(pool))
        chosen = rng.choice(len(pool), size=take, replace=False)
        selection.update(pool[i] for i in chosen)
    if not selection:
        raise SearchError("cannot build a non-empty initial selection")
    return frozenset(selection)


def repair_selection(
    objective: Objective,
    selection: frozenset[int],
    rng: np.random.Generator,
) -> frozenset[int]:
    """Force a (possibly stale) selection into the constraint region.

    Used to warm-start from a previous iteration whose problem may have had
    different constraints or budget: unknown sources are dropped, the
    constrained sources are forced in, and if the budget overflows, free
    members are evicted at random.  An empty result falls back to a random
    selection.
    """
    required = required_ids(objective)
    budget = objective.problem.max_sources
    repaired = set(selection & objective.universe.source_ids) | set(required)
    over = len(repaired) - budget
    if over > 0:
        evictable = sorted(repaired - required)
        if over > len(evictable):
            raise SearchError(
                f"cannot repair selection: {len(required)} constrained "
                f"source(s) already exceed the budget m={budget}; relax "
                f"the constraints or raise max_sources"
            )
        chosen = rng.choice(len(evictable), size=over, replace=False)
        for index in chosen:
            repaired.discard(evictable[index])
    if not repaired:
        return random_selection(objective, rng)
    return frozenset(repaired)


def score_candidates(
    objective: Objective,
    selections: Sequence[frozenset[int]],
    batch: bool = True,
) -> list[Solution]:
    """Score candidate selections, order-preserving.

    With ``batch=True`` (the optimizers' default) the whole list goes
    through the objective's columnar :meth:`~repro.quality.Objective.
    evaluate_batch` in one call; otherwise — or when the objective is a
    test double without a batch API — each candidate is scored by the
    scalar evaluator.  Both paths return bit-identical solutions, so an
    optimizer's trajectory does not depend on which one ran.
    """
    selections = list(selections)
    if batch:
        evaluate_batch = getattr(objective, "evaluate_batch", None)
        if evaluate_batch is not None:
            solutions = evaluate_batch(selections)
        else:
            solutions = [
                objective.evaluate(selection) for selection in selections
            ]
    else:
        solutions = [
            objective.evaluate(selection) for selection in selections
        ]
    hook = current_progress_hook()
    if hook is not None:
        try:
            hook(solutions)
        except Exception:  # noqa: BLE001 - observation must not sink solves
            pass
    return solutions


def best_of(solutions: Sequence[Solution]) -> Solution:
    """The highest-objective solution, preferring feasible ones on ties."""
    best = worst_solution()
    for solution in solutions:
        if (solution.objective, solution.feasible) > (
            best.objective,
            best.feasible,
        ):
            best = solution
    return best
