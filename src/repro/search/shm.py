"""Shared-memory transport for large read-only worker arrays.

A portfolio solve ships one :class:`~repro.search.parallel.WorkerContext`
to every pool process through the initializer pickle.  The heavy parts of
that context — the similarity matrix, the stacked PCSA word matrix, the
compiled ``EvalContext`` vectors — are big numpy arrays that every worker
only *reads*, so serializing them per process makes ``jobs=K`` spin-up
cost scale with universe size for no benefit (most painfully under
``spawn``, where fork's copy-on-write does not help either).

This module provides the primitive layer: the parent copies each array
into a named :mod:`multiprocessing.shared_memory` segment once
(:class:`SharedSegmentSet`), ships only the tiny
:class:`SharedArrayRef` descriptors through the pickle, and each worker
maps the segments back into zero-copy read-only arrays
(:func:`attach_array`).  Which arrays ride this channel — and how a
context is torn apart and reassembled around them — is the caller's
business (see ``_SharedContextPayload`` in
:mod:`repro.search.parallel`).

Lifecycle: segments live exactly as long as one solve's pool phase.  They
are created before the first pool is built, survive pool rotation and
BrokenProcessPool rebuilds (the context is immutable, so every pool
generation attaches the same segments), and are closed + unlinked in the
solve's ``finally`` — after which the memory itself is freed when the
last attached process unmaps.  Setting ``MUBE_SHM=0`` (or running where
:mod:`multiprocessing.shared_memory` is unavailable) disables the
channel entirely; callers then fall back to the plain context pickle.

The module keeps a bounded log of every segment name it ever created
(:func:`created_segment_names`) so regression tests can assert nothing
leaked into ``/dev/shm`` across rotation and recovery paths.
"""

from __future__ import annotations

import os
import uuid
from collections import deque
from dataclasses import dataclass

import numpy as np

try:  # pragma: no cover - missing only on exotic platforms
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _resource_tracker = None
    _shared_memory = None

#: Set to ``0`` to force the plain-pickle context transport.
SHM_ENV = "MUBE_SHM"

#: Every segment name starts with this, so tests (and operators staring at
#: ``/dev/shm``) can tell ours apart.
SEGMENT_PREFIX = "mube_shm_"

#: Names of segments ever created by this process, newest last (bounded).
_CREATED_LOG: deque[str] = deque(maxlen=256)

#: Child-side handles kept alive for the process's lifetime — dropping a
#: SharedMemory object invalidates every array viewing its buffer.
_ATTACHED: list = []


def shm_available() -> bool:
    """True when the shared-memory transport can be used at all."""
    if os.environ.get(SHM_ENV, "1") == "0":
        return False
    return _shared_memory is not None


def _tracker_name(segment) -> str:
    """The name string the stdlib registered this segment under.

    ``SharedMemory.__init__`` registers ``self._name`` with the resource
    tracker — on POSIX that is the *slash-prefixed* form (``/mube_…``),
    which the public ``.name`` property strips.  Our defensive
    un/re-registration must use the exact same string or it silently
    no-ops against the tracker's bookkeeping.  Prefer the private field
    while it exists (it is what the stdlib itself passes to the
    tracker); fall back to the public property if a future Python drops
    or renames it, so the calls degrade to a *consistent* pairing
    instead of raising AttributeError mid-cleanup.
    """
    private = getattr(segment, "_name", None)
    return private if private is not None else segment.name


@dataclass(frozen=True)
class SharedArrayRef:
    """A picklable pointer to one array living in a named shm segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedSegmentSet:
    """Parent-side owner of one solve's shared-memory segments.

    :meth:`share` copies an array out into a fresh segment and returns
    its ref; :meth:`close` closes *and unlinks* everything, exactly once,
    in the solve's ``finally``.  Unlinking while workers are still
    attached is safe on POSIX: the name disappears immediately, the
    memory when the last mapping goes away.
    """

    def __init__(self):
        self._segments = []

    def share(self, array: np.ndarray) -> SharedArrayRef:
        """Copy an array into a new segment and return its descriptor."""
        array = np.ascontiguousarray(array)
        name = f"{SEGMENT_PREFIX}{os.getpid()}_{uuid.uuid4().hex[:8]}"
        segment = _shared_memory.SharedMemory(
            name=name, create=True, size=max(int(array.nbytes), 1)
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        self._segments.append(segment)
        _CREATED_LOG.append(segment.name)
        return SharedArrayRef(
            name=segment.name,
            shape=tuple(array.shape),
            dtype=array.dtype.str,
        )

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(segment.name for segment in self._segments)

    def total_bytes(self) -> int:
        return sum(segment.size for segment in self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        """Close and unlink every segment; idempotent."""
        for segment in self._segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - nothing left to do
                pass
            if _resource_tracker is not None:
                # Under fork the workers share this process's tracker, so
                # their defensive unregister (see attach_array) already
                # removed the name; re-register before unlink so the
                # unlink's own unregister finds it instead of spraying
                # KeyError tracebacks out of the tracker process.
                try:
                    _resource_tracker.register(
                        _tracker_name(segment), "shared_memory"
                    )
                except Exception:  # pragma: no cover
                    pass
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._segments.clear()


def attach_array(ref: SharedArrayRef) -> np.ndarray:
    """Map a shared segment into a read-only array (worker side).

    The segment handle is parked in a module-level list for the worker
    process's lifetime: pool workers attach once in the initializer and
    only ever run solve tasks, so there is nothing to detach early for.
    """
    segment = _shared_memory.SharedMemory(name=ref.name)
    if _resource_tracker is not None:
        # Attaching registers the segment with the resource tracker
        # (unconditionally, on this Python), which would unlink it out
        # from under the parent and the sibling workers when this
        # process is torn down.  Only the creating parent may unlink;
        # take this process back out of the bookkeeping.
        try:
            _resource_tracker.unregister(
                _tracker_name(segment), "shared_memory"
            )
        except Exception:  # pragma: no cover - tracker variants differ
            pass
    _ATTACHED.append(segment)
    array = np.ndarray(
        ref.shape, dtype=np.dtype(ref.dtype), buffer=segment.buf
    )
    array.flags.writeable = False
    return array


def created_segment_names() -> tuple[str, ...]:
    """Names of recently created segments (for leak regression tests)."""
    return tuple(_CREATED_LOG)


def shm_mount_dir() -> str | None:
    """Where this platform exposes POSIX shm segments as files, if anywhere.

    Linux mounts a tmpfs at ``/dev/shm``, which is what makes the leak
    check below possible at all; macOS and the BSDs keep POSIX shm out
    of the filesystem namespace entirely, and Windows has no such path.
    Returns ``None`` when no inspectable mount exists.
    """
    return "/dev/shm" if os.path.isdir("/dev/shm") else None


def live_segment_names() -> tuple[str, ...]:
    """The subset of logged segments still present in the shm mount.

    This is a **Linux-only** leak probe: it inspects the ``/dev/shm``
    tmpfs (see :func:`shm_mount_dir`).  On platforms without an
    inspectable shm directory it returns the empty tuple — "nothing
    known to be alive" — rather than misreporting every segment ever
    created as leaked just because the path never exists there.
    """
    shm_dir = shm_mount_dir()
    if shm_dir is None:
        return ()
    alive = []
    for name in _CREATED_LOG:
        if os.path.exists(os.path.join(shm_dir, name)):
            alive.append(name)
    return tuple(alive)


__all__ = [
    "SEGMENT_PREFIX",
    "SHM_ENV",
    "SharedArrayRef",
    "SharedSegmentSet",
    "attach_array",
    "created_segment_names",
    "live_segment_names",
    "shm_available",
    "shm_mount_dir",
]
