"""Resilience layer for the portfolio engine: timeouts, retry, checkpoints.

The parallel engine (PR 4) made worker failure *survivable* — a crashed
worker becomes a :class:`~repro.search.parallel.WorkerOutcome` with an
error instead of sinking the solve.  This module makes failure
*recoverable*, under one hard constraint: every recovery action must keep
the portfolio a pure function of its inputs.  Concretely:

* **Deterministic retry.**  A failed or timed-out worker is re-run up to
  ``RetryPolicy.max_retries`` times on a fixed backoff schedule.  By
  default the retry re-runs the *identical* spec (same optimizer, same
  seed), so a transient fault — a killed process, a hung machine — costs
  wall-clock but cannot change the answer: the retried portfolio's winner
  is the winner an unfaulted run would have produced.  For faults that
  are themselves a function of the seed, ``RetryPolicy(reseed=True)``
  derives the retry seed through :func:`derive_worker_seed`, a pure
  ``(base_seed, worker_index, attempt)`` mix — two faulted runs with the
  same seeds and the same faults still produce the same winner.

* **Checkpoint/resume.**  The engine snapshots best-so-far state after
  every worker outcome as an atomic JSON file (write to ``.tmp``, then
  ``os.replace``), recording each worker's status, selection, stats and
  trajectory.  Resuming re-evaluates completed workers' stored selections
  against the (deterministic) objective instead of re-running their
  searches, so a resumed solve reproduces the killed run's finished work
  bit-identically and only spends compute on the workers the crash
  interrupted.  A fingerprint of the problem guards against resuming
  against a different universe, weights, or constraints.

The engine-side mechanics (future timeouts, ``BrokenProcessPool``
rebuild, requeueing) live in :mod:`repro.search.parallel`; this module
owns the *data contracts* so they can be tested and documented on their
own.  See docs/resilience.md for semantics and the fault-injection
cookbook.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

from ..exceptions import SearchError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..core import Problem
    from .parallel import WorkerSpec

#: Checkpoint schema version; bumped on incompatible layout changes.
CHECKPOINT_VERSION = 1

#: Reserved spec-param key the engine rewrites to the current attempt
#: number on every retry.  Deliberately collision-proof: a real
#: optimizer constructor param named ``attempt`` must never be clobbered
#: by the retry machinery, so the contract uses a dunder name no
#: ordinary optimizer would claim.
ATTEMPT_PARAM = "__attempt__"

_MASK64 = (1 << 64) - 1

#: Derived seeds stay below 2**63 so numpy's ``default_rng`` accepts them
#: on every platform.
_SEED_SPACE = 1 << 63


def derive_worker_seed(base_seed: int, worker_index: int, attempt: int) -> int:
    """A pure, stable seed for one worker's ``attempt``-th retry.

    Attempt 0 is the worker's own seed, untouched — the derivation is an
    extension of the existing seeding scheme, not a replacement.  Later
    attempts mix ``(base_seed, worker_index, attempt)`` through a
    splitmix64-style finalizer, so the retry seed is a fixed function of
    the three coordinates: the same faulted portfolio re-run yields the
    same retry seeds, on any platform, in any process.
    """
    if attempt <= 0:
        return base_seed
    x = (
        (base_seed & _MASK64) * 0x9E3779B97F4A7C15
        + (worker_index & _MASK64) * 0xBF58476D1CE4E5B9
        + (attempt & _MASK64) * 0x94D049BB133111EB
    ) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x % _SEED_SPACE


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How (and how often) failed or timed-out workers are re-run.

    Attributes
    ----------
    max_retries:
        Additional attempts after the first (0 disables retry).
    backoff:
        Deterministic delay schedule in seconds: attempt ``k`` (k >= 1)
        sleeps ``backoff[k - 1]``, clamped to the last entry.  Empty
        means no delay.  There is deliberately no jitter — retry timing
        must be as reproducible as the retried search.
    reseed:
        Re-run retries under :func:`derive_worker_seed` instead of the
        original seed.  Leave False (the default) when faults are
        environmental: the retried worker then reproduces exactly the
        result the unfaulted run would have produced.  Set True when the
        failure is a function of the seed itself and re-running it
        verbatim would fail forever.
    """

    max_retries: int = 0
    backoff: tuple[float, ...] = ()
    reseed: bool = False

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise SearchError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if any(delay < 0 for delay in self.backoff):
            raise SearchError(f"backoff delays must be >= 0: {self.backoff}")

    @property
    def max_attempts(self) -> int:
        """Total attempts a worker may consume (first run included)."""
        return self.max_retries + 1

    def delay(self, attempt: int) -> float:
        """Seconds to wait before running ``attempt`` (>= 1)."""
        if attempt < 1 or not self.backoff:
            return 0.0
        return self.backoff[min(attempt - 1, len(self.backoff) - 1)]


@dataclass(frozen=True, slots=True)
class ResilienceConfig:
    """The engine's recovery knobs, bundled.

    Attributes
    ----------
    worker_timeout:
        Per-worker wall-clock budget in seconds.  In pool mode a worker
        whose future exceeds it is cancelled and recorded as
        ``timed_out``; in-process (``jobs=1``) the check is post-hoc —
        a worker that *returns* after overrunning the budget is still
        recorded as timed out (and retried), so both modes agree on
        outcomes, but a truly hung in-process worker cannot be
        preempted.  ``None`` disables the timeout.
    retry:
        The :class:`RetryPolicy` for failed/timed-out workers.
    checkpoint:
        Path for best-so-far snapshots; also the resume source when the
        file already exists.  ``None`` disables checkpointing.
    pool_rebuilds:
        How many times a broken process pool is rebuilt before the
        engine degrades to running the remaining workers in-process.
    """

    worker_timeout: float | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint: str | None = None
    pool_rebuilds: int = 1

    def __post_init__(self) -> None:
        if self.worker_timeout is not None and self.worker_timeout <= 0:
            raise SearchError(
                f"worker_timeout must be > 0, got {self.worker_timeout}"
            )
        if self.pool_rebuilds < 0:
            raise SearchError(
                f"pool_rebuilds must be >= 0, got {self.pool_rebuilds}"
            )

    @property
    def active(self) -> bool:
        """True iff any resilience feature is switched on."""
        return (
            self.worker_timeout is not None
            or self.retry.max_retries > 0
            or self.checkpoint is not None
        )


def respec_for_attempt(
    spec: "WorkerSpec", worker_index: int, attempt: int, reseed: bool
) -> "WorkerSpec":
    """The spec to actually run for a worker's ``attempt``-th try.

    Attempt 0 is the caller's spec verbatim.  Retries rewrite two things,
    both deterministically: the optimizer seed (only under ``reseed``,
    via :func:`derive_worker_seed`), and any constructor param keyed on
    the reserved :data:`ATTEMPT_PARAM` name — the installation contract
    the fault-injection harness (:mod:`repro.testing.faults`) uses to
    key faults on ``(worker_index, attempt)`` without the engine knowing
    about faults.  Ordinary params — including one a real optimizer
    happens to call ``attempt`` — pass through untouched.
    """
    if attempt <= 0:
        return spec
    params = tuple(
        (key, attempt if key == ATTEMPT_PARAM else value)
        for key, value in spec.params
    )
    config = spec.config
    if reseed:
        config = replace(
            config,
            seed=derive_worker_seed(spec.config.seed, worker_index, attempt),
        )
    return replace(spec, config=config, params=params)


# -- problem fingerprint ------------------------------------------------------


def problem_fingerprint(problem: "Problem") -> str:
    """A stable digest of everything a checkpoint must match to resume.

    Covers the universe's ids and schemas, the weights, constraints,
    budget, θ, β and the characteristic QEFs — the full input of the
    optimization.  Two problems with the same fingerprint evaluate any
    selection identically, which is what makes restoring a checkpointed
    selection bit-identical.
    """
    universe = problem.universe
    payload = {
        "sources": [
            (source.source_id, tuple(source.schema), source.cardinality)
            for source in sorted(universe, key=lambda s: s.source_id)
        ],
        "weights": sorted(problem.weights.items()),
        "source_constraints": sorted(problem.source_constraints),
        "ga_constraints": sorted(
            tuple(sorted(ga.names())) for ga in problem.ga_constraints
        ),
        "max_sources": problem.max_sources,
        "theta": problem.theta,
        "beta": problem.beta,
        "characteristic_qefs": [
            (
                spec.name,
                spec.characteristic,
                spec.aggregator,
                spec.higher_is_better,
            )
            for spec in problem.characteristic_qefs
        ],
    }
    digest = hashlib.sha256(repr(payload).encode("utf-8"))
    return digest.hexdigest()[:16]


# -- checkpoint data model ----------------------------------------------------


@dataclass(frozen=True, slots=True)
class WorkerProgress:
    """One worker's recorded state inside a checkpoint.

    ``status`` is one of ``"ok"``, ``"failed"``, ``"timed_out"`` or
    ``"pending"``.  Completed workers carry enough to be restored without
    re-running the search: the selection (re-evaluated on resume — the
    objective is deterministic, so this reproduces the full solution),
    the run stats, and the trajectory.
    """

    index: int
    optimizer: str
    seed: int
    label: str
    status: str = "pending"
    attempts: int = 0
    error: str | None = None
    selection: tuple[int, ...] | None = None
    stats: dict | None = None
    trajectory: tuple[float, ...] = ()

    @property
    def finished(self) -> bool:
        """True iff this worker needs no further work on resume."""
        return self.status in ("ok", "failed", "timed_out")

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "optimizer": self.optimizer,
            "seed": self.seed,
            "label": self.label,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "selection": (
                list(self.selection) if self.selection is not None else None
            ),
            "stats": self.stats,
            "trajectory": list(self.trajectory),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WorkerProgress":
        selection = data.get("selection")
        return cls(
            index=data["index"],
            optimizer=data["optimizer"],
            seed=data["seed"],
            label=data["label"],
            status=data["status"],
            attempts=data.get("attempts", 0),
            error=data.get("error"),
            selection=tuple(selection) if selection is not None else None,
            stats=data.get("stats"),
            trajectory=tuple(data.get("trajectory", ())),
        )


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """An atomic snapshot of a portfolio solve in flight.

    ``best_selection`` is the deterministic-merge winner over the
    finished workers at write time — the anytime answer that survives a
    crash.  ``workers`` records every worker's progress so resume knows
    exactly what is left to do.
    """

    fingerprint: str
    workers: tuple[WorkerProgress, ...]
    best_selection: tuple[int, ...] | None = None
    best_objective: float | None = None
    best_quality: float | None = None
    version: int = CHECKPOINT_VERSION

    @property
    def completed(self) -> int:
        """Workers that need no further work on resume."""
        return sum(1 for worker in self.workers if worker.finished)

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "fingerprint": self.fingerprint,
            "best": {
                "selection": (
                    list(self.best_selection)
                    if self.best_selection is not None
                    else None
                ),
                "objective": self.best_objective,
                "quality": self.best_quality,
            },
            "completed": self.completed,
            "total": len(self.workers),
            "workers": [worker.to_dict() for worker in self.workers],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Checkpoint":
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise SearchError(
                f"unsupported checkpoint version {version!r} "
                f"(this build writes version {CHECKPOINT_VERSION})"
            )
        best = data.get("best") or {}
        selection = best.get("selection")
        return cls(
            fingerprint=data["fingerprint"],
            workers=tuple(
                WorkerProgress.from_dict(entry)
                for entry in data.get("workers", ())
            ),
            best_selection=(
                tuple(selection) if selection is not None else None
            ),
            best_objective=best.get("objective"),
            best_quality=best.get("quality"),
        )


def write_checkpoint(path: str | Path, checkpoint: Checkpoint) -> None:
    """Atomically persist a checkpoint (write ``.tmp``, then rename).

    ``os.replace`` is atomic on POSIX and Windows, so a reader — or a
    resume after a kill mid-write — only ever sees the previous complete
    snapshot or the new complete snapshot, never a torn file.
    """
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as stream:
        json.dump(checkpoint.to_dict(), stream, indent=1)
        stream.write("\n")
    os.replace(tmp, path)


def load_checkpoint(path: str | Path) -> Checkpoint | None:
    """Read a checkpoint, or None when the file does not exist.

    Raises
    ------
    SearchError
        If the file exists but is not a readable checkpoint — a corrupt
        snapshot must be surfaced, not silently restarted from scratch.
    """
    path = Path(path)
    if not path.exists():
        return None
    try:
        with open(path, encoding="utf-8") as stream:
            data = json.load(stream)
    except (OSError, json.JSONDecodeError) as exc:
        raise SearchError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        return Checkpoint.from_dict(data)
    except (KeyError, TypeError) as exc:
        raise SearchError(
            f"malformed checkpoint {path}: missing field {exc}"
        ) from exc


__all__ = [
    "ATTEMPT_PARAM",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "ResilienceConfig",
    "RetryPolicy",
    "WorkerProgress",
    "derive_worker_seed",
    "load_checkpoint",
    "problem_fingerprint",
    "respec_for_attempt",
    "write_checkpoint",
]
