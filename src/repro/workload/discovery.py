"""Source discovery: the deep-Web search engine in front of µBE (paper §1).

The paper's workflow starts *before* µBE: "One way to get a list of sources
that deal with this domain is to issue the query theater in a hidden Web
search engine such as CompletePlanet.com" — which returned 1021 sources of
wildly varying relevance.  This module reproduces that entry point:

* :func:`build_catalog` generates a mixed, multi-domain catalog (the
  "hidden Web");
* :class:`SourceSearchEngine` is a TF-IDF keyword engine over source names
  and schema attribute text;
* the hits become the universe µBE then narrows down.

The point the example (`examples/discovery_to_integration.py`) makes is the
paper's: keyword search recall is intentionally sloppy — off-domain sources
leak into the result — and µBE's joint source-selection/schema-mediation is
what turns that noisy list into a coherent integration.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, replace

from ..core import AttributeRef, Source, Universe
from ..exceptions import WorkloadError
from ..similarity.ngram import normalize_name
from .data import DataConfig, MTTFConfig
from .evaluation import GroundTruth
from .generator import Workload, generate_universe
from .domains import Domain, get_domain
from .perturb import PerturbationModel


def tokenize(text: str) -> list[str]:
    """Normalize and split text into index/query tokens."""
    return normalize_name(text).split()


@dataclass(frozen=True, slots=True)
class SearchHit:
    """One ranked search result."""

    source_id: int
    score: float
    name: str


@dataclass(frozen=True)
class Catalog:
    """A mixed multi-domain catalog with merged ground truth."""

    universe: Universe
    ground_truth: GroundTruth
    domain_of: dict[int, str]
    workloads: dict[str, Workload]

    def sources_of_domain(self, domain_name: str) -> frozenset[int]:
        """All source ids belonging to one domain."""
        return frozenset(
            sid for sid, name in self.domain_of.items()
            if name == domain_name
        )


def build_catalog(
    domains: Sequence[str | Domain] = ("books", "airfares", "automobiles"),
    sources_per_domain: int = 60,
    seed: int = 0,
    data_config: DataConfig | None = None,
    mttf: MTTFConfig | None = MTTFConfig(),
    perturbation: PerturbationModel | None = None,
) -> Catalog:
    """Generate a mixed catalog of several domain universes.

    Source ids are disjoint across domains and each domain's tuple pool is
    offset so coverage/redundancy remain honest over the combined universe
    (a books tuple can never collide with an airfares tuple).
    """
    if not domains:
        raise WorkloadError("build_catalog needs at least one domain")
    resolved = [
        domain if isinstance(domain, Domain) else get_domain(domain)
        for domain in domains
    ]
    if len({d.name for d in resolved}) != len(resolved):
        raise WorkloadError("catalog domains must be distinct")

    config = data_config or DataConfig()
    sources: list[Source] = []
    labels: dict[AttributeRef, str | None] = {}
    domain_of: dict[int, str] = {}
    workloads: dict[str, Workload] = {}
    all_concepts: list[str] = []
    for index, domain in enumerate(resolved):
        offset = index * sources_per_domain
        domain_config = _offset_pool(config, index)
        workload = generate_universe(
            domain=domain,
            n_sources=sources_per_domain,
            seed=seed + index,
            data_config=domain_config,
            mttf=mttf,
            perturbation=perturbation,
            source_id_offset=offset,
        )
        workloads[domain.name] = workload
        for source in workload.universe:
            sources.append(source)
            domain_of[source.source_id] = domain.name
            for attr in source.attributes:
                labels[attr] = workload.ground_truth.concept_of(attr)
        all_concepts.extend(
            f"{domain.name}:{concept}" for concept in domain.concept_names()
        )

    return Catalog(
        universe=Universe(sources),
        ground_truth=GroundTruth(labels, all_concepts),
        domain_of=domain_of,
        workloads=workloads,
    )


def _offset_pool(config: DataConfig, index: int) -> DataConfig:
    """Shift one domain's tuple-id space so the pools never collide.

    Sketches stay mergeable across domains (same PCSA parameters), but a
    books tuple id can never equal an airfares tuple id, keeping the
    coverage and redundancy estimates over the combined catalog honest.
    """
    return replace(
        config, tuple_id_offset=config.tuple_id_offset + index * config.pool_size
    )


class SourceSearchEngine:
    """TF-IDF keyword search over source names and schemas."""

    def __init__(self, catalog: Universe):
        self.universe = catalog
        self._documents: dict[int, Counter[str]] = {}
        document_frequency: Counter[str] = Counter()
        for source in catalog:
            tokens: Counter[str] = Counter()
            for token in tokenize(source.name.replace("-", " ")):
                tokens[token] += 1
            for attribute_name in source.schema:
                for token in tokenize(attribute_name):
                    tokens[token] += 1
            self._documents[source.source_id] = tokens
            for token in tokens:
                document_frequency[token] += 1
        self._idf = {
            token: math.log(1.0 + len(self._documents) / frequency)
            for token, frequency in document_frequency.items()
        }

    def vocabulary_size(self) -> int:
        """Number of distinct indexed tokens."""
        return len(self._idf)

    def search(self, query: str, limit: int | None = 20) -> list[SearchHit]:
        """Ranked sources matching any query token (TF-IDF scoring)."""
        query_tokens = tokenize(query)
        if not query_tokens:
            return []
        hits: list[SearchHit] = []
        for source_id, document in self._documents.items():
            score = sum(
                document[token] * self._idf.get(token, 0.0)
                for token in query_tokens
                if token in document
            )
            if score > 0.0:
                hits.append(
                    SearchHit(
                        source_id,
                        score,
                        self.universe.source(source_id).name,
                    )
                )
        hits.sort(key=lambda hit: (-hit.score, hit.source_id))
        return hits if limit is None else hits[:limit]

    def subuniverse(self, query: str, limit: int | None = 20) -> Universe:
        """The universe of sources matching a query — µBE's input."""
        hits = self.search(query, limit)
        if not hits:
            raise WorkloadError(f"no sources match query {query!r}")
        return Universe(
            self.universe.source(hit.source_id) for hit in hits
        )


def precision_of_hits(
    hits: Iterable[SearchHit], catalog: Catalog, domain_name: str
) -> float:
    """Fraction of hits that belong to the intended domain."""
    hits = list(hits)
    if not hits:
        return 0.0
    wanted = catalog.sources_of_domain(domain_name)
    return sum(1 for hit in hits if hit.source_id in wanted) / len(hits)
