"""Synthetic source data: tuple pools, Zipf cardinalities, MTTF (paper §7.1).

Tuples are opaque integer ids drawn from a fixed pool, half labelled
*General* and half *Specialty*.  Half the sources draw only from the
General pool; the other half mix in a small share of Specialty tuples —
"there are general items available in all Web sources dealing with a
certain domain, and there are specialty items only available in a few
sources" — which is what gives coverage and redundancy their structure.

Source cardinalities follow a bounded Zipf distribution, and each source
carries a mean-time-to-failure characteristic drawn from a clipped normal.
The paper's absolute scales (4M tuples, cardinalities 10k–1M) are
configurable; the defaults are a 10× reduction that preserves every ratio
while keeping universe generation fast on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import WorkloadError


@dataclass(frozen=True, slots=True)
class DataConfig:
    """Parameters of the synthetic data generator.

    ``paper_scale()`` returns the exact magnitudes from §7.1.
    """

    pool_size: int = 400_000
    tuple_id_offset: int = 0
    specialty_fraction: float = 0.5
    min_cardinality: int = 1_000
    max_cardinality: int = 100_000
    zipf_exponent: float = 1.0
    specialty_share: float = 0.05
    general_source_fraction: float = 0.5
    sketch_maps: int = 256
    sketch_map_bits: int = 32
    sketch_seed: int = 7

    def __post_init__(self) -> None:
        if self.pool_size < 2:
            raise WorkloadError(f"pool_size must be >= 2, got {self.pool_size}")
        if self.tuple_id_offset < 0:
            raise WorkloadError(
                f"tuple_id_offset must be >= 0, got {self.tuple_id_offset}"
            )
        if not 0.0 < self.specialty_fraction < 1.0:
            raise WorkloadError(
                "specialty_fraction must be in (0, 1), got "
                f"{self.specialty_fraction}"
            )
        if not 0 < self.min_cardinality <= self.max_cardinality:
            raise WorkloadError(
                "need 0 < min_cardinality <= max_cardinality, got "
                f"[{self.min_cardinality}, {self.max_cardinality}]"
            )
        if not 0.0 <= self.specialty_share <= 1.0:
            raise WorkloadError(
                f"specialty_share must be in [0, 1], got {self.specialty_share}"
            )
        if not 0.0 <= self.general_source_fraction <= 1.0:
            raise WorkloadError(
                "general_source_fraction must be in [0, 1], got "
                f"{self.general_source_fraction}"
            )
        if self.zipf_exponent <= 0.0:
            raise WorkloadError(
                f"zipf_exponent must be positive, got {self.zipf_exponent}"
            )

    @classmethod
    def paper_scale(cls) -> "DataConfig":
        """The exact magnitudes of §7.1 (4M tuples, 10k–1M cardinalities)."""
        return cls(
            pool_size=4_000_000,
            min_cardinality=10_000,
            max_cardinality=1_000_000,
        )

    @classmethod
    def tiny(cls) -> "DataConfig":
        """A fast configuration for unit tests."""
        return cls(
            pool_size=5_000,
            min_cardinality=50,
            max_cardinality=1_000,
            sketch_maps=64,
        )

    @property
    def general_pool_size(self) -> int:
        """Number of tuple ids in the General pool (ids below the split)."""
        return self.pool_size - self.specialty_pool_size

    @property
    def specialty_pool_size(self) -> int:
        """Number of tuple ids in the Specialty pool (ids at/above the split)."""
        return int(round(self.pool_size * self.specialty_fraction))


@dataclass(frozen=True, slots=True)
class MTTFConfig:
    """Mean-time-to-failure characteristic: N(mean, std) clipped positive."""

    mean: float = 100.0
    std: float = 40.0
    minimum: float = 1.0

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw MTTF values for ``count`` sources."""
        values = rng.normal(self.mean, self.std, size=count)
        return np.maximum(values, self.minimum)


def zipf_cardinalities(
    count: int, config: DataConfig, rng: np.random.Generator
) -> np.ndarray:
    """Bounded Zipf cardinalities: the rank-``k`` source holds ``max/kᶻ``.

    Ranks are randomly assigned so cardinality is independent of source id,
    and the result is clipped into [min_cardinality, max_cardinality] and
    into the pool size (a source cannot hold more distinct tuples than
    exist).
    """
    ranks = rng.permutation(count).astype(np.float64) + 1.0
    raw = config.max_cardinality / ranks**config.zipf_exponent
    clipped = np.clip(raw, config.min_cardinality, config.max_cardinality)
    return np.minimum(clipped, config.pool_size).astype(np.int64)


def sample_source_tuples(
    cardinality: int,
    is_specialty_source: bool,
    config: DataConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw a source's tuple ids without replacement from the pools.

    General sources draw everything from the General pool; Specialty
    sources replace a ``specialty_share`` slice with Specialty-pool ids.
    The config's ``tuple_id_offset`` shifts the whole id space, which is
    how multi-domain catalogs keep their pools disjoint.
    """
    general_size = config.general_pool_size
    specialty_size = config.specialty_pool_size
    specialty_count = 0
    if is_specialty_source and specialty_size > 0:
        specialty_count = min(
            int(round(cardinality * config.specialty_share)), specialty_size
        )
    general_count = min(cardinality - specialty_count, general_size)

    parts = []
    if general_count > 0:
        parts.append(
            rng.choice(general_size, size=general_count, replace=False)
        )
    if specialty_count > 0:
        parts.append(
            rng.choice(specialty_size, size=specialty_count, replace=False)
            + general_size
        )
    if not parts:
        raise WorkloadError(
            f"cannot sample {cardinality} tuples from pool of "
            f"{config.pool_size}"
        )
    ids = np.concatenate(parts).astype(np.uint64)
    if config.tuple_id_offset:
        ids += np.uint64(config.tuple_id_offset)
    return ids
