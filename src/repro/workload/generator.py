"""Full synthetic-universe generation (paper §7.1).

Builds the experimental universe: the first ``min(n, 50)`` sources are the
original base schemas, the rest are perturbed copies; every source gets
Zipf-distributed data drawn from the General/Specialty pools, a PCSA
signature, and an MTTF characteristic.  The result carries a
:class:`~repro.workload.evaluation.GroundTruth` so Table-1-style accuracy
accounting stays possible after generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import AttributeRef, GlobalAttribute, Source, Universe
from ..exceptions import WorkloadError
from ..sketch.pcsa import PCSASketch
from .bamm import BaseSchema, base_schemas_for
from .data import (
    DataConfig,
    MTTFConfig,
    sample_source_tuples,
    zipf_cardinalities,
)
from .domains import BOOKS, Domain, noise_vocabulary_for
from .evaluation import GroundTruth
from .perturb import PerturbationModel


@dataclass(frozen=True)
class Workload:
    """A generated universe plus everything needed to score solutions."""

    universe: Universe
    ground_truth: GroundTruth
    base_schemas: tuple[BaseSchema, ...]
    base_index: tuple[int, ...]
    seed: int
    data_config: DataConfig | None
    domain: Domain = BOOKS
    source_id_offset: int = 0
    exact_ids: tuple[np.ndarray | None, ...] = field(repr=False, default=())

    def conformant_source_ids(self) -> tuple[int, ...]:
        """Sources whose schema equals its base schema exactly.

        These are the paper's constraint candidates: "random sources with
        schemas that are fully conformant to one of the original BAMM
        schemas".
        """
        out = []
        for source in self.universe:
            position = source.source_id - self.source_id_offset
            base = self.base_schemas[self.base_index[position]]
            if source.schema == base.attribute_names():
                out.append(source.source_id)
        return tuple(out)


#: Backwards-compatible alias: the paper's workload is the Books domain.
BooksWorkload = Workload


def generate_universe(
    domain: Domain = BOOKS,
    n_sources: int = 200,
    seed: int = 0,
    perturbation: PerturbationModel | None = None,
    data_config: DataConfig | None = None,
    mttf: MTTFConfig | None = MTTFConfig(),
    with_data: bool = True,
    keep_tuples: bool = False,
    source_id_offset: int = 0,
) -> Workload:
    """Generate a synthetic universe for any registered domain.

    Parameters
    ----------
    domain:
        The concept corpus to draw schemas from (default: Books, the
        paper's experimental domain).
    n_sources:
        Universe size (the paper sweeps 100-700).
    seed:
        Seed for perturbation, data and characteristics.  The base schemas
        themselves come from the frozen repository seed and do not vary.
    perturbation:
        The schema perturbation model.  Defaults to the standard
        probabilities with a noise vocabulary filtered to be safely
        unrelated to the domain (see
        :func:`repro.workload.domains.noise_vocabulary_for`).
    data_config:
        Tuple-pool and cardinality parameters; pass
        ``DataConfig.paper_scale()`` for the paper's exact magnitudes.
    mttf:
        MTTF characteristic parameters, or None to omit the characteristic.
    with_data:
        Generate tuples, cardinalities and PCSA signatures.  Without data,
        sources are *uncooperative* and only schema-based QEFs are usable.
    keep_tuples:
        Retain exact tuple-id arrays (for PCSA accuracy experiments).
        They are dropped by default - µBE itself only needs the sketches.
    source_id_offset:
        First source id to assign; lets multiple domain universes combine
        into one catalog without id collisions (see
        :mod:`repro.workload.discovery`).
    """
    if n_sources < 1:
        raise WorkloadError(f"n_sources must be >= 1, got {n_sources}")
    if perturbation is None:
        perturbation = PerturbationModel(
            noise_vocabulary=noise_vocabulary_for(domain)
        )
    config = data_config or DataConfig()
    rng = np.random.default_rng(seed)

    bases = base_schemas_for(domain)
    labelled_schemas: list[tuple[tuple[str | None, str], ...]] = []
    base_index: list[int] = []
    for position in range(n_sources):
        if position < len(bases):
            base = bases[position]
            labelled_schemas.append(tuple(base.attributes))
            base_index.append(position)
        else:
            which = int(rng.integers(len(bases)))
            base_index.append(which)
            labelled_schemas.append(perturbation.perturb(bases[which], rng))

    cardinalities = (
        zipf_cardinalities(n_sources, config, rng) if with_data else None
    )
    specialty_flags = (
        rng.random(n_sources) >= config.general_source_fraction
        if with_data
        else None
    )
    mttf_values = mttf.sample(n_sources, rng) if mttf is not None else None

    sources: list[Source] = []
    labels: dict[AttributeRef, str | None] = {}
    exact_ids: list[np.ndarray | None] = []
    for position, labelled in enumerate(labelled_schemas):
        source_id = source_id_offset + position
        schema = tuple(name for _, name in labelled)
        name = f"{domain.name}-src-{position:03d}"
        characteristics = {}
        if mttf_values is not None:
            characteristics["mttf"] = float(mttf_values[position])
        if with_data:
            assert cardinalities is not None and specialty_flags is not None
            tuple_ids = sample_source_tuples(
                int(cardinalities[position]),
                bool(specialty_flags[position]),
                config,
                rng,
            )
            sketch = PCSASketch.from_ints(
                tuple_ids,
                num_maps=config.sketch_maps,
                map_bits=config.sketch_map_bits,
                seed=config.sketch_seed,
            )
            source = Source(
                source_id,
                name=name,
                schema=schema,
                cardinality=int(tuple_ids.size),
                characteristics=characteristics,
                tuple_ids=tuple_ids if keep_tuples else None,
                sketch=sketch,
            )
            exact_ids.append(tuple_ids if keep_tuples else None)
        else:
            source = Source(
                source_id,
                name=name,
                schema=schema,
                characteristics=characteristics,
            )
            exact_ids.append(None)
        sources.append(source)
        for index, (concept, _) in enumerate(labelled):
            labels[source.attributes[index]] = concept

    return Workload(
        universe=Universe(sources),
        ground_truth=GroundTruth(labels, domain.concept_names()),
        base_schemas=bases,
        base_index=tuple(base_index),
        seed=seed,
        data_config=config if with_data else None,
        domain=domain,
        source_id_offset=source_id_offset,
        exact_ids=tuple(exact_ids),
    )


def generate_books_universe(
    n_sources: int = 200,
    seed: int = 0,
    perturbation: PerturbationModel | None = None,
    data_config: DataConfig | None = None,
    mttf: MTTFConfig | None = MTTFConfig(),
    with_data: bool = True,
    keep_tuples: bool = False,
) -> Workload:
    """Generate the paper's experimental universe (the Books domain).

    See :func:`generate_universe` for the parameters.  Kept as the primary
    entry point because every experiment in the paper uses this workload.
    """
    if perturbation is None:
        # The paper's noise vocabulary: the fixed Books-unrelated word list.
        perturbation = PerturbationModel()
    return generate_universe(
        domain=BOOKS,
        n_sources=n_sources,
        seed=seed,
        perturbation=perturbation,
        data_config=data_config,
        mttf=mttf,
        with_data=with_data,
        keep_tuples=keep_tuples,
    )


def pick_source_constraints(
    workload: Workload, count: int, rng: np.random.Generator
) -> frozenset[int]:
    """Random conformant sources to use as source constraints.

    Raises
    ------
    WorkloadError
        If fewer than ``count`` conformant sources exist.
    """
    candidates = workload.conformant_source_ids()
    if len(candidates) < count:
        raise WorkloadError(
            f"only {len(candidates)} conformant sources available, "
            f"need {count}"
        )
    chosen = rng.choice(len(candidates), size=count, replace=False)
    return frozenset(candidates[i] for i in chosen)


def pick_ga_constraints(
    workload: Workload,
    count: int,
    rng: np.random.Generator,
    max_attributes: int = 5,
) -> tuple[GlobalAttribute, ...]:
    """Accurate GA constraints built from the ground truth.

    For each of ``count`` distinct random concepts, collects up to
    ``max_attributes`` attributes of that concept from *different* sources
    (the paper's constraints: "up to 5 attributes that represent accurate
    matchings of attributes that appear in different sources").
    """
    truth = workload.ground_truth
    per_concept: dict[str, dict[int, AttributeRef]] = {}
    for source in workload.universe:
        for attr in source.attributes:
            concept = truth.concept_of(attr)
            if concept is None:
                continue
            per_concept.setdefault(concept, {}).setdefault(
                source.source_id, attr
            )
    eligible = sorted(
        concept
        for concept, by_source in per_concept.items()
        if len(by_source) >= 2
    )
    if len(eligible) < count:
        raise WorkloadError(
            f"only {len(eligible)} concepts span >= 2 sources, need {count}"
        )
    chosen = rng.choice(len(eligible), size=count, replace=False)
    constraints = []
    for concept_index in sorted(chosen):
        by_source = per_concept[eligible[concept_index]]
        source_ids = sorted(by_source)
        take = min(max_attributes, len(source_ids))
        picked = rng.choice(len(source_ids), size=take, replace=False)
        constraints.append(
            GlobalAttribute(by_source[source_ids[i]] for i in picked)
        )
    return tuple(constraints)
