"""The paper's motivating example: theater-ticket sources (Figure 1).

Eleven hidden-Web sources found by querying a deep-Web search engine for
"theater", embedded verbatim from Figure 1.  :func:`theater_universe`
turns them into a small universe with synthetic data and latency/fee
characteristics for the examples and the session-model tests.
"""

from __future__ import annotations

import numpy as np

from ..core import Source, Universe
from ..sketch.pcsa import PCSASketch
from .data import DataConfig, sample_source_tuples, zipf_cardinalities

#: (source name, schema) exactly as printed in Figure 1.
THEATER_SCHEMAS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("tonyawards.com", ("keywords",)),
    ("whatsonstage.com", ("your town",)),
    ("aceticket.com", ("state", "city", "event", "venue")),
    ("canadiantheatre.com", ("phrase", "search term")),
    ("londontheatre.co.uk", ("type", "keyword")),
    ("mime.info.com", ("search for",)),
    (
        "pbs.org",
        ("program title", "date", "author", "actor", "director", "keyword"),
    ),
    ("pa.msu.edu", ("keyword",)),
    ("wstonline.org", ("keyword", "after date", "before date")),
    ("officiallondontheatre.co.uk", ("keyword", "after date", "before date")),
    (
        "lastminute.com",
        ("event name", "event type", "location", "date", "radius"),
    ),
)


def theater_universe(
    seed: int = 0,
    with_data: bool = True,
    data_config: DataConfig | None = None,
) -> Universe:
    """Build the Figure-1 universe with synthetic data and characteristics.

    Each source gets a latency (ms, lower is better) and a booking fee
    (currency units, lower is better) so the characteristic-QEF machinery
    has something realistic to aggregate.
    """
    rng = np.random.default_rng(seed)
    config = data_config or DataConfig.tiny()
    count = len(THEATER_SCHEMAS)
    cardinalities = zipf_cardinalities(count, config, rng) if with_data else None
    specialty = rng.random(count) >= 0.5
    latencies = rng.uniform(40.0, 900.0, size=count)
    fees = rng.choice([0.0, 1.5, 2.5, 5.0], size=count)

    sources = []
    for source_id, (name, schema) in enumerate(THEATER_SCHEMAS):
        characteristics = {
            "latency_ms": float(round(latencies[source_id], 1)),
            "fee": float(fees[source_id]),
        }
        if with_data:
            assert cardinalities is not None
            tuple_ids = sample_source_tuples(
                int(cardinalities[source_id]),
                bool(specialty[source_id]),
                config,
                rng,
            )
            sketch = PCSASketch.from_ints(
                tuple_ids,
                num_maps=config.sketch_maps,
                map_bits=config.sketch_map_bits,
                seed=config.sketch_seed,
            )
            sources.append(
                Source(
                    source_id,
                    name=name,
                    schema=schema,
                    cardinality=int(tuple_ids.size),
                    characteristics=characteristics,
                    sketch=sketch,
                )
            )
        else:
            sources.append(
                Source(
                    source_id,
                    name=name,
                    schema=schema,
                    characteristics=characteristics,
                )
            )
    return Universe(sources)
