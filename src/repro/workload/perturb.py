"""Schema perturbation (paper §7.1).

Each of the 700 experimental sources is either an original base schema or a
*perturbed copy*: attributes are removed, replaced with off-domain noise
words, or noise attributes are added, "following a probability distribution
that allows us to retain some of the characteristics of the original
schemas, while at the same time having variability".

The perturbed copy keeps the ground-truth concept label of every surviving
original attribute; noise attributes are labelled ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import WorkloadError
from .bamm import BaseSchema
from .concepts import NOISE_VOCABULARY

#: A labelled attribute: (concept or None for noise, attribute name).
LabelledAttribute = tuple[str | None, str]


@dataclass(frozen=True, slots=True)
class PerturbationModel:
    """Probabilities of the three perturbation operations.

    Attributes
    ----------
    p_remove:
        Per-attribute probability of deletion.
    p_replace:
        Per-attribute probability of replacement with a noise word
        (evaluated after deletion; a removed attribute cannot be replaced).
    add_rate:
        Poisson mean of the number of noise attributes appended.
    noise_vocabulary:
        The words replacement/addition draws from.
    """

    p_remove: float = 0.10
    p_replace: float = 0.10
    add_rate: float = 0.5
    noise_vocabulary: tuple[str, ...] = NOISE_VOCABULARY

    def __post_init__(self) -> None:
        for field_name in ("p_remove", "p_replace"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(
                    f"{field_name} must be in [0, 1], got {value}"
                )
        if self.add_rate < 0.0:
            raise WorkloadError(
                f"add_rate must be non-negative, got {self.add_rate}"
            )
        if not self.noise_vocabulary and (
            self.p_replace > 0.0 or self.add_rate > 0.0
        ):
            raise WorkloadError(
                "replacement/addition requires a non-empty noise vocabulary"
            )

    def perturb(
        self, base: BaseSchema, rng: np.random.Generator
    ) -> tuple[LabelledAttribute, ...]:
        """A perturbed labelled copy of a base schema.

        Never returns an empty schema: if every attribute was removed, one
        original attribute survives.
        """
        attributes: list[LabelledAttribute] = []
        for concept, name in base.attributes:
            if rng.random() < self.p_remove:
                continue
            if rng.random() < self.p_replace:
                attributes.append((None, self._noise_word(rng)))
            else:
                attributes.append((concept, name))
        for _ in range(int(rng.poisson(self.add_rate))):
            attributes.append((None, self._noise_word(rng)))
        if not attributes:
            keep = int(rng.integers(len(base.attributes)))
            attributes.append(base.attributes[keep])
        return tuple(attributes)

    def _noise_word(self, rng: np.random.Generator) -> str:
        return self.noise_vocabulary[
            int(rng.integers(len(self.noise_vocabulary)))
        ]


#: The no-op model: every copy is fully conformant to its base schema.
IDENTITY = PerturbationModel(p_remove=0.0, p_replace=0.0, add_rate=0.0)
