"""The Books domain: concepts, attribute-name variants, noise vocabulary.

The paper's experiments use the 50 Books-domain schemas of the BAMM/UIUC
web-integration repository, which contain **14 distinct concepts** (§7.3).
The repository is not redistributable, so this module defines a synthetic
equivalent: 14 concepts, each with a curated list of attribute-name
variants as they appear on real book search forms, plus an off-domain noise
vocabulary used by the perturbation model's *replace* operation.

Two properties matter for fidelity (and are pinned by tests):

* cross-concept name pairs stay safely below the default matching
  threshold θ = 0.65 under 3-gram Jaccard, so pure GAs are learnable;
* concepts have lexically close variants (e.g. plural forms) that clear θ,
  so clusters can grow beyond exact duplicates.
"""

from __future__ import annotations

from collections.abc import Mapping

#: Concept → attribute-name variants.  The first variant is the most
#: common rendering and is weighted accordingly by the schema generator.
BOOKS_CONCEPTS: Mapping[str, tuple[str, ...]] = {
    "title": ("title", "titles", "book title", "exact title"),
    "author": ("author", "authors", "author name", "author last name"),
    "isbn": ("isbn", "isbn number", "isbn code"),
    "publisher": ("publisher", "publishers", "publisher name", "publishing house"),
    "keyword": ("keyword", "keywords", "search keywords", "any keyword"),
    "price": ("price", "prices", "price range", "maximum price"),
    "subject": ("subject", "subjects", "subject area", "category"),
    "format": ("format", "formats", "binding", "book format"),
    "year": ("publication year", "pub year", "release year", "year"),
    "edition": ("edition", "editions", "edition number"),
    "language": ("language", "languages", "book language"),
    "condition": ("condition", "book condition", "item condition", "used or new"),
    "age": ("age range", "age group", "reader age", "age level"),
    "series": ("series", "series name", "book series"),
}

#: Per-concept probability that a base schema includes the concept.
#: Mirrors how often each field shows up on real book search interfaces.
CONCEPT_FREQUENCY: Mapping[str, float] = {
    "title": 0.95,
    "author": 0.90,
    "keyword": 0.70,
    "isbn": 0.60,
    "publisher": 0.50,
    "subject": 0.45,
    "price": 0.40,
    "format": 0.35,
    "year": 0.35,
    "series": 0.25,
    "edition": 0.25,
    "language": 0.25,
    "condition": 0.20,
    "age": 0.15,
}

#: Words unrelated to the Books domain, used when a perturbation replaces a
#: real attribute (paper §7.1: "a list of words unrelated to the Books
#: domain").  Drawn from travel, automotive, real-estate, food, finance,
#: sports and weather forms.
NOISE_VOCABULARY: tuple[str, ...] = (
    "airline",
    "arrival city",
    "bedrooms",
    "body style",
    "cabin class",
    "calories",
    "checkin",
    "checkout",
    "cuisine",
    "cylinders",
    "departure city",
    "destination",
    "dividend yield",
    "dosage",
    "engine size",
    "exterior color",
    "flight number",
    "fuel economy",
    "gate",
    "horsepower",
    "humidity",
    "ingredient",
    "jersey number",
    "lot size",
    "mileage",
    "model year of car",
    "monthly rent",
    "neighborhood",
    "nightly rate",
    "nutrition facts",
    "odometer",
    "opponent",
    "passengers",
    "payload capacity",
    "pet policy",
    "playoff round",
    "precipitation",
    "property tax",
    "return flight",
    "room count",
    "roster spot",
    "seat assignment",
    "serving size",
    "square feet",
    "stadium",
    "stock symbol",
    "stopovers",
    "team standings",
    "ticker",
    "tire size",
    "transmission",
    "travel insurance",
    "upholstery",
    "vehicle make",
    "vin",
    "wind speed",
    "wingspan",
    "zoning",
)

#: The number of distinct concepts — the paper's "up to 14 true GAs".
CONCEPT_COUNT = len(BOOKS_CONCEPTS)


def concept_names() -> tuple[str, ...]:
    """The 14 concept names in canonical order."""
    return tuple(BOOKS_CONCEPTS)


def variants_of(concept: str) -> tuple[str, ...]:
    """Attribute-name variants of a concept.

    Raises
    ------
    KeyError
        If the concept is unknown.
    """
    return BOOKS_CONCEPTS[concept]


def concept_of_name(name: str) -> str | None:
    """Reverse lookup: which concept a variant name belongs to, if any."""
    return _NAME_TO_CONCEPT.get(name)


_NAME_TO_CONCEPT: dict[str, str] = {
    variant: concept
    for concept, variants in BOOKS_CONCEPTS.items()
    for variant in variants
}
