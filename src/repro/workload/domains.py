"""Multi-domain concept corpora.

The BAMM/UIUC repository the paper samples from covers several web-form
domains (Books, Airfares, Automobiles, Movies, Music).  The paper's
experiments use Books only; the discovery scenario of §1 — query a deep-Web
search engine, get a mixed bag of sources, then let µBE sort out the
integration — needs a *mixed* catalog, so this module adds Airfares and
Automobiles corpora with the same structure as the Books one: concepts with
real-world attribute-name variants and per-concept form frequencies.

As with Books, cross-concept variant pairs within a domain stay below the
default θ = 0.65 under 3-gram Jaccard (pinned by tests), so pure GAs remain
learnable, while name collisions *across* domains are intentionally absent —
mixed catalogs stay separable, which is what makes the discovery example's
accounting crisp.
"""

from __future__ import annotations

from collections.abc import Mapping
from functools import lru_cache

from ..exceptions import WorkloadError
from ..similarity.measures import NGramJaccard
from .concepts import BOOKS_CONCEPTS, CONCEPT_FREQUENCY, NOISE_VOCABULARY


class Domain:
    """A web-form domain: named concepts, each with attribute-name variants.

    Hash/equality are identity-based; domains are registry singletons.
    """

    __slots__ = ("name", "concepts", "frequencies", "_name_to_concept")

    def __init__(
        self,
        name: str,
        concepts: Mapping[str, tuple[str, ...]],
        frequencies: Mapping[str, float],
    ):
        if set(concepts) != set(frequencies):
            raise WorkloadError(
                f"domain {name!r}: frequencies must cover exactly the "
                "concepts"
            )
        for concept, variants in concepts.items():
            if not variants:
                raise WorkloadError(
                    f"domain {name!r}: concept {concept!r} has no variants"
                )
        self.name = name
        self.concepts = {c: tuple(v) for c, v in concepts.items()}
        self.frequencies = dict(frequencies)
        self._name_to_concept = {
            variant: concept
            for concept, variants in self.concepts.items()
            for variant in variants
        }

    def concept_names(self) -> tuple[str, ...]:
        """The domain's concepts in canonical order."""
        return tuple(self.concepts)

    def variants_of(self, concept: str) -> tuple[str, ...]:
        """Attribute-name variants of a concept."""
        return self.concepts[concept]

    def concept_of_name(self, name: str) -> str | None:
        """Which concept a variant name belongs to, if any."""
        return self._name_to_concept.get(name)

    def all_variants(self) -> tuple[str, ...]:
        """Every variant name in the domain."""
        return tuple(self._name_to_concept)

    def __repr__(self) -> str:
        return f"Domain({self.name!r}, {len(self.concepts)} concepts)"


BOOKS = Domain("books", BOOKS_CONCEPTS, CONCEPT_FREQUENCY)

AIRFARES = Domain(
    "airfares",
    {
        "origin": ("from", "departure city", "leaving from", "origin"),
        "destination": ("to", "destination", "arrival city", "going to"),
        "depart_date": (
            "departure date", "departure dates", "depart date", "travel date",
        ),
        "return_date": ("return date", "return dates", "returning", "return"),
        "passengers": (
            "passengers", "number of passengers", "travelers", "travellers",
        ),
        "cabin": ("cabin class", "class", "cabin", "class of service"),
        "airline": ("airline", "airlines", "carrier", "preferred airline"),
        "trip_type": ("trip type", "round trip", "one way"),
        "nonstop": ("nonstop", "nonstop only", "direct flights"),
        "fare": ("fare", "fares", "max fare", "fare limit"),
    },
    {
        "origin": 0.95,
        "destination": 0.95,
        "depart_date": 0.85,
        "return_date": 0.75,
        "passengers": 0.60,
        "cabin": 0.45,
        "airline": 0.40,
        "trip_type": 0.35,
        "nonstop": 0.25,
        "fare": 0.25,
    },
)

AUTOMOBILES = Domain(
    "automobiles",
    {
        "make": ("make", "makes", "vehicle make", "manufacturer"),
        "model": ("model", "models", "car model"),
        "year": ("model year", "model years", "car year"),
        "price": ("asking price", "sticker price", "price cap"),
        "mileage": ("mileage", "odometer", "miles driven"),
        "transmission": ("transmission", "gearbox", "transmission type"),
        "fuel": ("fuel type", "fuel", "fuel economy"),
        "body": ("body style", "body type"),
        "color": ("exterior color", "color", "colour"),
        "zip": ("zip code", "zip", "postal code"),
    },
    {
        "make": 0.95,
        "model": 0.90,
        "year": 0.70,
        "price": 0.60,
        "mileage": 0.50,
        "zip": 0.45,
        "transmission": 0.35,
        "fuel": 0.30,
        "body": 0.30,
        "color": 0.25,
    },
)

#: Registry of built-in domains.
DOMAINS: dict[str, Domain] = {
    domain.name: domain for domain in (BOOKS, AIRFARES, AUTOMOBILES)
}


def get_domain(name: str) -> Domain:
    """Look a domain up by registry name.

    Raises
    ------
    WorkloadError
        If the name is unknown.
    """
    try:
        return DOMAINS[name]
    except KeyError:
        raise WorkloadError(
            f"unknown domain {name!r}; available: {', '.join(sorted(DOMAINS))}"
        ) from None


@lru_cache(maxsize=16)
def noise_vocabulary_for(domain: Domain, theta: float = 0.65) -> tuple[str, ...]:
    """Noise words safe for a domain's perturbation model.

    "Words unrelated to the domain": drawn from the master noise pool and
    the *other* domains' variants, excluding anything whose 3-gram Jaccard
    similarity to one of this domain's variants reaches θ — otherwise a
    noise replacement could silently merge with a real concept and corrupt
    the ground-truth accounting.
    """
    measure = NGramJaccard(3)
    candidates: list[str] = list(NOISE_VOCABULARY)
    for other in DOMAINS.values():
        if other is not domain:
            candidates.extend(other.all_variants())
    own = domain.all_variants()
    safe = tuple(
        sorted(
            word
            for word in dict.fromkeys(candidates)
            if all(measure(word, variant) < theta for variant in own)
        )
    )
    if not safe:
        raise WorkloadError(
            f"no safe noise words remain for domain {domain.name!r}"
        )
    return safe
