"""Synthetic attribute-value samples for data-based matching.

The paper notes that ``Match(S)`` can be driven by a *data-based* similarity
measure (§3, citing corpus-based matching) — two attributes are similar if
their observed values overlap, regardless of their names.  This module
gives the synthetic workloads the values needed to exercise that path.

Every (domain, concept) owns a deterministic pool of value strings; each
attribute *name* belonging to the concept gets a large random sample of the
pool.  Samples of two names from the same concept overlap heavily
(expected Jaccard ≈ f/(2−f) at sample fraction f — ≈ 0.77 at the default
52/60), while samples of different concepts are disjoint.  That is exactly
the value structure that lets instance similarity merge lexically-alien
synonyms: "binding" and "format" share no 3-grams, but both range over the
same binding values.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from hashlib import blake2b

import numpy as np

from ..exceptions import WorkloadError
from .domains import DOMAINS, Domain


@dataclass(frozen=True, slots=True)
class ValueConfig:
    """Parameters of the value-sample generator.

    ``sample_size / pool_size`` controls how much two same-concept samples
    overlap; the default 52/60 yields a within-concept instance Jaccard of
    roughly 0.77 — comfortably above the paper's θ = 0.65 — while cross-concept
    similarity is exactly zero.
    """

    pool_size: int = 60
    sample_size: int = 52
    seed: int = 11

    def __post_init__(self) -> None:
        if not 1 <= self.sample_size <= self.pool_size:
            raise WorkloadError(
                f"need 1 <= sample_size <= pool_size, got "
                f"{self.sample_size}/{self.pool_size}"
            )


def concept_value_pool(
    domain: Domain, concept: str, config: ValueConfig = ValueConfig()
) -> tuple[str, ...]:
    """The deterministic value pool of a (domain, concept) pair."""
    if concept not in domain.concepts:
        raise WorkloadError(
            f"domain {domain.name!r} has no concept {concept!r}"
        )
    return tuple(
        f"{domain.name}/{concept}/v{i:03d}" for i in range(config.pool_size)
    )


def _sample_pool(
    pool: tuple[str, ...], key: str, config: ValueConfig
) -> frozenset[str]:
    # Stable across processes: Python's built-in str hash is salted.
    digest = blake2b(
        f"{config.seed}|{key}".encode("utf-8"), digest_size=8
    ).digest()
    rng = np.random.default_rng(int.from_bytes(digest, "little"))
    chosen = rng.choice(len(pool), size=config.sample_size, replace=False)
    return frozenset(pool[i] for i in chosen)


def build_value_samples(
    names: Iterable[str],
    domains: Iterable[Domain] | None = None,
    config: ValueConfig = ValueConfig(),
) -> dict[str, frozenset[str]]:
    """Value samples for every attribute name in a vocabulary.

    Names belonging to a known concept sample that concept's pool; unknown
    names (noise attributes) each get their own private pool, so identical
    noise names still match on values while distinct ones never do.
    """
    resolved = tuple(domains) if domains is not None else tuple(
        DOMAINS.values()
    )
    samples: dict[str, frozenset[str]] = {}
    for name in dict.fromkeys(names):
        pool: tuple[str, ...] | None = None
        for domain in resolved:
            concept = domain.concept_of_name(name)
            if concept is not None:
                pool = concept_value_pool(domain, concept, config)
                break
        if pool is None:
            pool = tuple(
                f"noise/{name}/v{i:03d}" for i in range(config.pool_size)
            )
        samples[name] = _sample_pool(pool, name, config)
    return samples


def value_samples_for_universe(
    universe,
    domains: Iterable[Domain] | None = None,
    config: ValueConfig = ValueConfig(),
) -> dict[str, frozenset[str]]:
    """Value samples covering a universe's whole attribute vocabulary."""
    return build_value_samples(
        universe.attribute_names(), domains=domains, config=config
    )


#: Mapping type accepted by the instance similarity measure.
ValueSamples = Mapping[str, frozenset[str]]
