"""Synthetic workloads: Books universe, theater example, ground truth."""

from .bamm import (
    BASE_SCHEMA_COUNT,
    REPOSITORY_SEED,
    BaseSchema,
    base_schemas_for,
    books_base_schemas,
    variant_weights,
)
from .concepts import (
    BOOKS_CONCEPTS,
    CONCEPT_COUNT,
    CONCEPT_FREQUENCY,
    NOISE_VOCABULARY,
    concept_names,
    concept_of_name,
    variants_of,
)
from .data import (
    DataConfig,
    MTTFConfig,
    sample_source_tuples,
    zipf_cardinalities,
)
from .discovery import (
    Catalog,
    SearchHit,
    SourceSearchEngine,
    build_catalog,
    precision_of_hits,
)
from .domains import (
    AIRFARES,
    AUTOMOBILES,
    BOOKS,
    DOMAINS,
    Domain,
    get_domain,
    noise_vocabulary_for,
)
from .evaluation import GAQualityReport, GroundTruth, score_schema
from .forms import extract_schema, source_from_form
from .generator import (
    BooksWorkload,
    Workload,
    generate_books_universe,
    generate_universe,
    pick_ga_constraints,
    pick_source_constraints,
)
from .perturb import IDENTITY, LabelledAttribute, PerturbationModel
from .stats import UniverseStats, describe_universe, render_stats
from .theater import THEATER_SCHEMAS, theater_universe
from .values import (
    ValueConfig,
    build_value_samples,
    concept_value_pool,
    value_samples_for_universe,
)

__all__ = [
    "AIRFARES",
    "AUTOMOBILES",
    "BASE_SCHEMA_COUNT",
    "BOOKS",
    "BOOKS_CONCEPTS",
    "BaseSchema",
    "BooksWorkload",
    "CONCEPT_COUNT",
    "CONCEPT_FREQUENCY",
    "Catalog",
    "DOMAINS",
    "DataConfig",
    "Domain",
    "GAQualityReport",
    "GroundTruth",
    "IDENTITY",
    "LabelledAttribute",
    "MTTFConfig",
    "NOISE_VOCABULARY",
    "PerturbationModel",
    "REPOSITORY_SEED",
    "SearchHit",
    "SourceSearchEngine",
    "THEATER_SCHEMAS",
    "UniverseStats",
    "ValueConfig",
    "Workload",
    "base_schemas_for",
    "books_base_schemas",
    "build_catalog",
    "build_value_samples",
    "concept_value_pool",
    "concept_names",
    "concept_of_name",
    "describe_universe",
    "extract_schema",
    "generate_books_universe",
    "generate_universe",
    "get_domain",
    "noise_vocabulary_for",
    "pick_ga_constraints",
    "pick_source_constraints",
    "precision_of_hits",
    "render_stats",
    "sample_source_tuples",
    "score_schema",
    "source_from_form",
    "theater_universe",
    "value_samples_for_universe",
    "variant_weights",
    "variants_of",
    "zipf_cardinalities",
]
