"""Ground-truth scoring of mediated schemas (Table 1 of the paper).

The synthetic workload knows which concept every attribute expresses, so a
generated mediated schema can be scored exactly:

* a GA is **pure** if all its members carry the same concept label —
  a *true GA* in the paper's terminology;
* a GA is **false** if it mixes two concepts, or a concept with noise;
* a GA is **noise** if every member is a noise attribute (off-domain words
  that genuinely repeat across sources; they match correctly but express
  no Books concept, so the paper's accounting ignores them);
* a concept is **missed** if it was *present* in the selected sources —
  at least β of its attributes available across distinct sources, so a GA
  was formable — but no pure GA found it.

Table 1's columns map to :class:`GAQualityReport` as: "True GAs selected" →
``true_ga_concepts`` (count of distinct concepts found), "Attributes in
true GAs" → ``attributes_in_true_gas``, "True GAs missed" → ``missed``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from ..core import AttributeRef, GlobalAttribute, MediatedSchema, Universe


class GroundTruth:
    """Concept labels for every attribute of a synthetic universe."""

    __slots__ = ("_labels", "concepts")

    def __init__(
        self,
        labels: Mapping[AttributeRef, str | None],
        concepts: Iterable[str],
    ):
        self._labels = dict(labels)
        self.concepts = tuple(concepts)

    def concept_of(self, attribute: AttributeRef) -> str | None:
        """The attribute's concept, or None for a noise attribute."""
        return self._labels.get(attribute)

    def labels_of(self, ga: GlobalAttribute) -> set[str | None]:
        """The distinct concept labels inside a GA."""
        return {self.concept_of(attr) for attr in ga}

    def concepts_present(
        self,
        universe: Universe,
        source_ids: Iterable[int],
        min_sources: int = 2,
    ) -> frozenset[str]:
        """Concepts for which a GA is formable within the selection.

        A concept is present when at least ``min_sources`` *distinct*
        selected sources carry an attribute labelled with it (a valid GA
        needs one attribute per source).
        """
        per_concept: dict[str, set[int]] = {}
        for sid in source_ids:
            for attr in universe.source(sid).attributes:
                concept = self.concept_of(attr)
                if concept is not None:
                    per_concept.setdefault(concept, set()).add(sid)
        return frozenset(
            concept
            for concept, sources in per_concept.items()
            if len(sources) >= min_sources
        )


@dataclass(frozen=True, slots=True)
class GAQualityReport:
    """Exact quality accounting for one mediated schema."""

    true_ga_concepts: int
    concepts_found: frozenset[str]
    pure_ga_count: int
    attributes_in_true_gas: int
    false_gas: int
    noise_gas: int
    missed: int
    concepts_present: frozenset[str]

    @property
    def precision_proxy(self) -> float:
        """Fraction of concept-bearing GAs that are pure (1.0 = no false GAs)."""
        concept_gas = self.pure_ga_count + self.false_gas
        if concept_gas == 0:
            return 1.0
        return self.pure_ga_count / concept_gas

    @property
    def recall_proxy(self) -> float:
        """Fraction of present concepts that were found."""
        if not self.concepts_present:
            return 1.0
        return len(self.concepts_found & self.concepts_present) / len(
            self.concepts_present
        )


def score_schema(
    schema: MediatedSchema | None,
    ground_truth: GroundTruth,
    universe: Universe,
    selected: Iterable[int],
    min_sources: int = 2,
) -> GAQualityReport:
    """Score a mediated schema against the ground truth.

    ``min_sources`` should equal the problem's β so "present" matches what
    the matching operator was allowed to output.
    """
    selected_ids = frozenset(selected)
    present = ground_truth.concepts_present(
        universe, selected_ids, min_sources=min_sources
    )
    concepts_found: set[str] = set()
    pure_gas = 0
    attributes_in_true = 0
    false_gas = 0
    noise_gas = 0
    for ga in schema or ():
        labels = ground_truth.labels_of(ga)
        if labels == {None}:
            noise_gas += 1
        elif len(labels) == 1:
            concept = next(iter(labels))
            assert concept is not None
            concepts_found.add(concept)
            pure_gas += 1
            attributes_in_true += len(ga)
        else:
            false_gas += 1
    missed = len(present - concepts_found)
    return GAQualityReport(
        true_ga_concepts=len(concepts_found),
        concepts_found=frozenset(concepts_found),
        pure_ga_count=pure_gas,
        attributes_in_true_gas=attributes_in_true,
        false_gas=false_gas,
        noise_gas=noise_gas,
        missed=missed,
        concepts_present=present,
    )
