"""Synthetic base schemas standing in for the BAMM Books repository.

The paper builds its 700-source universe from the 50 Books-domain schemas
of the BAMM/UIUC repository plus perturbed copies (§7.1).  This module
deterministically generates 50 base schemas from the concept corpus in
:mod:`repro.workload.concepts`: each schema includes a concept with that
concept's real-world frequency and renders it with one of its name
variants, common variants being likelier.  The generation seed is a fixed
constant, so the "repository" is identical for every user and every run.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..exceptions import WorkloadError
from .domains import BOOKS, Domain

#: Fixed seed freezing the synthetic repository.
REPOSITORY_SEED = 2007_04_15

#: Number of base schemas, matching BAMM's Books domain.
BASE_SCHEMA_COUNT = 50


@dataclass(frozen=True, slots=True)
class BaseSchema:
    """One base schema: an ordered list of (concept, attribute-name) pairs."""

    name: str
    attributes: tuple[tuple[str, str], ...]

    def attribute_names(self) -> tuple[str, ...]:
        """Just the attribute names, in schema order."""
        return tuple(name for _, name in self.attributes)

    def concepts(self) -> frozenset[str]:
        """The set of concepts the schema expresses."""
        return frozenset(concept for concept, _ in self.attributes)

    def __len__(self) -> int:
        return len(self.attributes)


def variant_weights(count: int) -> np.ndarray:
    """Geometric preference for earlier (more common) variants."""
    weights = 0.5 ** np.arange(count, dtype=np.float64)
    return weights / weights.sum()


@lru_cache(maxsize=32)
def base_schemas_for(
    domain: Domain,
    count: int = BASE_SCHEMA_COUNT,
    seed: int = REPOSITORY_SEED,
) -> tuple[BaseSchema, ...]:
    """The frozen synthetic repository of base schemas for a domain.

    Every schema has at least two attributes (the two most frequent
    concepts are forced in if the frequency draws produce fewer), and at
    most one attribute per concept — real query interfaces do not ask for
    the same field twice.
    """
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    rng = np.random.default_rng(seed)
    fallback = sorted(
        domain.concept_names(),
        key=lambda c: -domain.frequencies[c],
    )[:2]
    schemas = []
    for index in range(count):
        attributes: list[tuple[str, str]] = []
        for concept in domain.concept_names():
            if rng.random() >= domain.frequencies[concept]:
                continue
            variants = domain.variants_of(concept)
            weights = variant_weights(len(variants))
            variant = variants[int(rng.choice(len(variants), p=weights))]
            attributes.append((concept, variant))
        if len(attributes) < 2:
            attributes = [
                (concept, domain.variants_of(concept)[0])
                for concept in fallback
            ]
        schemas.append(
            BaseSchema(
                name=f"{domain.name}-base-{index:02d}",
                attributes=tuple(attributes),
            )
        )
    return tuple(schemas)


def books_base_schemas(
    count: int = BASE_SCHEMA_COUNT, seed: int = REPOSITORY_SEED
) -> tuple[BaseSchema, ...]:
    """The Books repository (the paper's 50 BAMM schemas)."""
    return base_schemas_for(BOOKS, count, seed)
