"""Extracting source schemas from hidden-Web query forms.

µBE's input schemas come from somewhere: "Recent work on understanding
hidden Web query interfaces can help the user extract these schemas"
(paper §1, citing MetaQuerier and WISE-Integrator).  This module is that
front end, scoped to what µBE needs — a flat list of attribute names from
an HTML search form:

* ``<label for=...>`` associations and wrapping ``<label>`` elements;
* free text immediately preceding a field (the dominant layout in 2000s
  query interfaces: ``Title: <input name=title>``);
* prettified ``name``/``id`` attributes as the fallback
  (``pub_year`` → ``pub year``).

Hidden/submit/button inputs are ignored; duplicated labels survive (they
are distinct attributes, exactly as in :class:`~repro.core.Source`).
"""

from __future__ import annotations

from dataclasses import dataclass
from html.parser import HTMLParser

from ..core import Source
from ..exceptions import WorkloadError
from ..similarity.ngram import normalize_name

#: Input types that are controls, not query attributes.
_NON_QUERY_TYPES = {
    "hidden", "submit", "button", "reset", "image",
}

#: Elements that define query fields.
_FIELD_TAGS = {"input", "select", "textarea"}


@dataclass
class _Field:
    """One form field found during parsing."""

    tag: str
    attrs: dict[str, str]
    preceding_text: str
    wrapping_label: str | None = None
    explicit_label: str | None = None

    def best_name(self) -> str | None:
        """Resolve the attribute name by label priority."""
        for candidate in (
            self.explicit_label,
            self.wrapping_label,
            self.preceding_text,
        ):
            cleaned = _clean_label(candidate)
            if cleaned:
                return cleaned
        for key in ("name", "id", "placeholder", "title"):
            cleaned = _clean_label(self.attrs.get(key))
            if cleaned:
                return cleaned
        return None


class _FormParser(HTMLParser):
    """Single-pass extraction of fields, labels, and preceding text."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.fields: list[_Field] = []
        self.labels_by_for: dict[str, str] = {}
        self._text_buffer: list[str] = []
        self._label_stack: list[tuple[str | None, list[str]]] = []
        self._in_select: bool = False

    def handle_starttag(self, tag, attrs):
        attr_map = {key: (value or "") for key, value in attrs}
        if tag == "label":
            self._label_stack.append((attr_map.get("for"), []))
            return
        if tag == "option":
            # Option text is a value, not a field name.
            self._in_select = True
            return
        if tag in _FIELD_TAGS:
            if (
                tag == "input"
                and attr_map.get("type", "text").lower() in _NON_QUERY_TYPES
            ):
                self._text_buffer.clear()
                return
            wrapping = (
                " ".join(self._label_stack[-1][1])
                if self._label_stack
                else None
            )
            self.fields.append(
                _Field(
                    tag=tag,
                    attrs=attr_map,
                    preceding_text=" ".join(self._text_buffer),
                    wrapping_label=wrapping,
                )
            )
            self._text_buffer.clear()

    def handle_endtag(self, tag):
        if tag == "label" and self._label_stack:
            for_id, chunks = self._label_stack.pop()
            text = " ".join(chunks)
            if for_id:
                self.labels_by_for[for_id] = text
            else:
                # A label not tied to an id labels the next field.
                self._text_buffer.append(text)
        elif tag == "select":
            self._in_select = False
        elif tag in ("tr", "p", "div", "br", "li"):
            # Block boundaries cut the "preceding text" association.
            # Cell boundaries (td/th) do NOT: the dominant table layout
            # puts the label in the cell before the field's cell.
            if not self._label_stack:
                self._text_buffer.clear()

    def handle_data(self, data):
        text = data.strip()
        if not text or self._in_select:
            return
        if self._label_stack:
            self._label_stack[-1][1].append(text)
        else:
            self._text_buffer.append(text)


def _clean_label(raw: str | None) -> str | None:
    if raw is None:
        return None
    cleaned = normalize_name(raw)
    if not cleaned or cleaned.isdigit():
        return None
    return cleaned


def extract_schema(html: str) -> tuple[str, ...]:
    """Extract the attribute names of a query form.

    Raises
    ------
    WorkloadError
        If no query field can be found.
    """
    parser = _FormParser()
    parser.feed(html)
    parser.close()
    names: list[str] = []
    for form_field in parser.fields:
        field_id = form_field.attrs.get("id")
        if field_id and field_id in parser.labels_by_for:
            form_field.explicit_label = parser.labels_by_for[field_id]
        name = form_field.best_name()
        if name is not None:
            names.append(name)
    if not names:
        raise WorkloadError("no query fields found in the form")
    return tuple(names)


def source_from_form(
    source_id: int,
    name: str,
    html: str,
    cardinality: int | None = None,
    characteristics=None,
    sketch=None,
) -> Source:
    """Build a :class:`~repro.core.Source` directly from a query form."""
    return Source(
        source_id,
        name=name,
        schema=extract_schema(html),
        cardinality=cardinality,
        characteristics=characteristics,
        sketch=sketch,
    )
