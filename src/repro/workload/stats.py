"""Universe statistics: describing a catalog before integrating it.

Before a user points µBE at a universe they want to know what is in it —
how big the sources are, how diverse the schemas, how much the vocabulary
repeats.  :func:`describe_universe` computes the summary and
:func:`render_stats` prints it; the examples and the CLI use both, and the
numbers double as sanity checks that a synthetic workload matches the
paper's §7.1 recipe (Zipf cardinalities, perturbed schema sizes).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from ..core import Universe


@dataclass(frozen=True)
class UniverseStats:
    """Aggregate description of one universe."""

    source_count: int
    cooperative_count: int
    attribute_count: int
    vocabulary_size: int
    schema_size_min: int
    schema_size_median: float
    schema_size_max: int
    total_cardinality: int
    cardinality_min: int
    cardinality_median: float
    cardinality_max: int
    top_names: tuple[tuple[str, int], ...]
    characteristic_names: tuple[str, ...]

    @property
    def name_repetition(self) -> float:
        """Mean occurrences per distinct attribute name.

        High repetition (> 2) is what makes exact-name clustering work on
        web catalogs: many interfaces render a concept identically.
        """
        if self.vocabulary_size == 0:
            return 0.0
        return self.attribute_count / self.vocabulary_size


def describe_universe(universe: Universe, top: int = 8) -> UniverseStats:
    """Compute aggregate statistics for a universe."""
    schema_sizes = np.array(
        [len(source.schema) for source in universe], dtype=np.int64
    )
    cardinalities = np.array(
        [
            source.cardinality
            for source in universe
            if source.cardinality is not None
        ],
        dtype=np.int64,
    )
    name_counts: Counter[str] = Counter(
        name for source in universe for name in source.schema
    )
    return UniverseStats(
        source_count=len(universe),
        cooperative_count=sum(1 for s in universe if s.is_cooperative),
        attribute_count=int(schema_sizes.sum()),
        vocabulary_size=len(name_counts),
        schema_size_min=int(schema_sizes.min()),
        schema_size_median=float(np.median(schema_sizes)),
        schema_size_max=int(schema_sizes.max()),
        total_cardinality=int(cardinalities.sum()) if cardinalities.size else 0,
        cardinality_min=int(cardinalities.min()) if cardinalities.size else 0,
        cardinality_median=(
            float(np.median(cardinalities)) if cardinalities.size else 0.0
        ),
        cardinality_max=int(cardinalities.max()) if cardinalities.size else 0,
        top_names=tuple(name_counts.most_common(top)),
        characteristic_names=universe.characteristic_names(),
    )


def render_stats(stats: UniverseStats) -> str:
    """Terminal-friendly rendering of universe statistics."""
    lines = [
        f"Universe: {stats.source_count} sources "
        f"({stats.cooperative_count} cooperative)",
        f"  Attributes: {stats.attribute_count} total, "
        f"{stats.vocabulary_size} distinct names "
        f"(repetition ×{stats.name_repetition:.1f})",
        f"  Schema size: min {stats.schema_size_min}, "
        f"median {stats.schema_size_median:.0f}, "
        f"max {stats.schema_size_max}",
    ]
    if stats.total_cardinality:
        lines.append(
            f"  Cardinality: min {stats.cardinality_min:,}, "
            f"median {stats.cardinality_median:,.0f}, "
            f"max {stats.cardinality_max:,} "
            f"(total {stats.total_cardinality:,})"
        )
    if stats.characteristic_names:
        lines.append(
            "  Characteristics: " + ", ".join(stats.characteristic_names)
        )
    if stats.top_names:
        rendered = ", ".join(
            f"{name} ×{count}" for name, count in stats.top_names
        )
        lines.append(f"  Most common names: {rendered}")
    return "\n".join(lines)
