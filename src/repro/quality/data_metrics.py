"""Data-dependent QEFs: cardinality, coverage, redundancy (paper §4).

With ``Σ(S) = Σ_{s∈S} |s|`` (sum of source cardinalities) and
``D(S) = |∪_{s∈S} s|`` (distinct tuples across the selection):

* ``Card(S) = Σ(S) / Σ(U)`` — how much data the selection holds;
* ``Coverage(S) = D(S) / D(U)`` — how much of the universe's distinct data
  the selection reaches;
* ``Redundancy(S)`` — how little the selected sources overlap, normalized
  so that 1 is best (pairwise-disjoint sources) and 0 is worst (all
  sources identical).  See DESIGN.md §2 for the reconstruction of the
  paper's (OCR-garbled) formula:

  ``Redundancy(S) = 1 − |S|·(Σ(S) − D(S)) / ((|S|−1)·Σ(S))``

``D`` is never computed from data: every cooperative source ships a PCSA
signature once, and unions are estimated by ORing signatures
(:mod:`repro.sketch`).  Uncooperative sources are excluded from all three
metrics — they contribute zero, exactly as the paper prescribes for
sources that refuse to provide cardinalities and hash signatures.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core import Source, Universe
from ..exceptions import SketchError
from ..sketch.exact import ExactDistinct, exact_union_count
from ..sketch.pcsa import PCSASketch, union_sketch
from .base import QEF, clamp_unit


def cooperative(sources: Sequence[Source]) -> list[Source]:
    """The sources that reported both a cardinality and a sketch."""
    return [s for s in sources if s.is_cooperative]


class CardinalityQEF(QEF):
    """F2: total selected cardinality, normalized by the universe's."""

    name = "cardinality"

    def __init__(self, universe: Universe):
        self._total = universe.total_cardinality()

    @property
    def total(self) -> int:
        """The universe-wide cardinality sum used as the denominator."""
        return self._total

    def __call__(self, sources: Sequence[Source]) -> float:
        if self._total <= 0:
            return 0.0
        selected = sum(s.cardinality or 0 for s in cooperative(sources))
        return clamp_unit(selected / self._total)


class CoverageQEF(QEF):
    """F3: estimated distinct tuples reached, normalized by the universe's.

    ``exact=True`` switches from PCSA estimation to true distinct counts
    over retained tuple ids — slow and only possible on workloads with
    ``keep_tuples=True``, used to ablate the sketch's impact.
    """

    name = "coverage"

    def __init__(self, universe: Universe, exact: bool = False):
        self._exact = exact
        self._universe_distinct = estimated_distinct(
            universe.sources, exact=exact
        )

    @property
    def exact(self) -> bool:
        """True when the QEF counts exactly instead of estimating."""
        return self._exact

    @property
    def universe_distinct(self) -> float:
        """``D(U)`` — the denominator all coverage scores share."""
        return self._universe_distinct

    def __call__(self, sources: Sequence[Source]) -> float:
        if self._universe_distinct <= 0.0:
            return 0.0
        distinct = estimated_distinct(sources, exact=self._exact)
        return clamp_unit(distinct / self._universe_distinct)


class RedundancyQEF(QEF):
    """F4: one minus the normalized overlap among the selected sources.

    The overlap fraction ``(Σ − D)/Σ`` ranges from 0 (disjoint) up to
    ``(n−1)/n`` when all ``n`` sources are identical, so dividing by that
    worst case maps the QEF onto the full [0, 1] range with 1 best,
    matching the paper's convention.  Selections with at most one
    cooperative source cannot overlap and score 1.
    """

    name = "redundancy"

    def __init__(self, exact: bool = False):
        self._exact = exact

    @property
    def exact(self) -> bool:
        """True when the QEF counts exactly instead of estimating."""
        return self._exact

    def __call__(self, sources: Sequence[Source]) -> float:
        coop = cooperative(sources)
        if len(coop) <= 1:
            return 1.0
        total = sum(s.cardinality or 0 for s in coop)
        if total <= 0:
            return 1.0
        distinct = estimated_distinct(
            coop, clamp_total=total, exact=self._exact
        )
        overlap = (total - distinct) / total
        worst = (len(coop) - 1) / len(coop)
        return clamp_unit(1.0 - overlap / worst)


class RedundancyRatioQEF(QEF):
    """Ablation variant: ``D(S) / Σ(S)`` without worst-case normalization.

    Also 1 when disjoint, but bottoms out at ``1/n`` rather than 0 for
    ``n`` identical sources.  Used by the ablation benchmark to show the
    normalization's effect on source selection.
    """

    name = "redundancy_ratio"

    def __call__(self, sources: Sequence[Source]) -> float:
        coop = cooperative(sources)
        if len(coop) <= 1:
            return 1.0
        total = sum(s.cardinality or 0 for s in coop)
        if total <= 0:
            return 1.0
        distinct = estimated_distinct(coop, clamp_total=total)
        return clamp_unit(distinct / total)


def estimated_distinct(
    sources: Sequence[Source],
    clamp_total: int | None = None,
    exact: bool = False,
) -> float:
    """Distinct tuples across the cooperative sources.

    By default the PCSA estimate (the paper's mechanism), clamped to the
    feasible range: it can be neither below the largest single source nor
    above the cardinality sum.  With ``exact=True`` the true distinct
    count is computed from retained tuple ids — the ablation baseline for
    measuring what the sketch error costs (sources without tuple data are
    skipped, mirroring the cooperative-only rule).
    """
    if exact:
        return float(
            exact_union_count(
                [
                    ExactDistinct(source.tuple_ids)
                    for source in sources
                    if source.is_cooperative and source.tuple_ids is not None
                ]
            )
        )
    sketches: list[PCSASketch] = []
    largest = 0
    total = 0
    for source in sources:
        if not source.is_cooperative:
            continue
        if source.sketch is None:  # pragma: no cover - is_cooperative guards
            raise SketchError(f"source {source.name!r} has no sketch")
        sketches.append(source.sketch)
        cardinality = source.cardinality or 0
        largest = max(largest, cardinality)
        total += cardinality
    if not sketches:
        return 0.0
    estimate = union_sketch(sketches).estimate()
    upper = float(clamp_total if clamp_total is not None else total)
    return min(max(estimate, float(largest)), upper)
