"""QEFs over source characteristics (paper §5).

Source characteristics are per-source positive reals of any magnitude —
latency, availability, fees, reputation, MTTF, ….  A characteristic QEF
aggregates the characteristic over the selected sources into [0, 1] after
normalizing each value against the universe-wide range.

The paper's example aggregator is the cardinality-weighted sum::

    wsum(S) = Σ_{s∈S} (q_s − min_U q)·|s|  /  (Σ_{s∈S} |s| · (max_U q − min_U q))

which is the cardinality-weighted mean of the normalized characteristic —
"a source with high availability and a large number of tuples is more
valuable than a source with high availability but only a few tuples."

Cost-like characteristics (latency, fees) set ``higher_is_better=False``,
which flips the normalization so smaller raw values score higher.  Sources
that do not report the characteristic are skipped; if every source's value
is identical the normalized score is defined to be 1.0 (no selection can do
better than any other on that dimension).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..core import CharacteristicSpec, Source, Universe
from ..exceptions import ReproError
from .base import QEF, clamp_unit

#: An aggregator folds (normalized value, cardinality) pairs into [0, 1].
Aggregator = Callable[[Sequence[tuple[float, int]]], float]


def wsum(pairs: Sequence[tuple[float, int]]) -> float:
    """Cardinality-weighted mean of normalized values (the paper's wsum)."""
    total_weight = sum(weight for _, weight in pairs)
    if total_weight <= 0:
        # No cardinalities known: fall back to the unweighted mean.
        return mean(pairs)
    return sum(value * weight for value, weight in pairs) / total_weight


def mean(pairs: Sequence[tuple[float, int]]) -> float:
    """Unweighted mean of normalized values."""
    if not pairs:
        return 0.0
    return sum(value for value, _ in pairs) / len(pairs)


def min_agg(pairs: Sequence[tuple[float, int]]) -> float:
    """Worst normalized value — for must-hold properties like availability."""
    if not pairs:
        return 0.0
    return min(value for value, _ in pairs)


def max_agg(pairs: Sequence[tuple[float, int]]) -> float:
    """Best normalized value — rewards having one excellent source."""
    if not pairs:
        return 0.0
    return max(value for value, _ in pairs)


def product(pairs: Sequence[tuple[float, int]]) -> float:
    """Product of normalized values.

    Models conjunctive properties: if the normalized characteristic is a
    per-source success probability (availability, reliability), the product
    is the probability that *every* selected source succeeds — so adding a
    mediocre source actively hurts, unlike under wsum/mean.
    """
    if not pairs:
        return 0.0
    result = 1.0
    for value, _ in pairs:
        result *= value
    return result


def median(pairs: Sequence[tuple[float, int]]) -> float:
    """Median normalized value — a mean robust to one terrible source."""
    if not pairs:
        return 0.0
    values = sorted(value for value, _ in pairs)
    middle = len(values) // 2
    if len(values) % 2:
        return values[middle]
    return (values[middle - 1] + values[middle]) / 2.0


AGGREGATORS: dict[str, Aggregator] = {
    "wsum": wsum,
    "mean": mean,
    "min": min_agg,
    "max": max_agg,
    "product": product,
    "median": median,
}


def get_aggregator(name: str) -> Aggregator:
    """Look an aggregator up by name.

    Raises
    ------
    ReproError
        If the name is unknown.
    """
    try:
        return AGGREGATORS[name]
    except KeyError:
        raise ReproError(
            f"unknown aggregator {name!r}; "
            f"available: {', '.join(sorted(AGGREGATORS))}"
        ) from None


class CharacteristicQEF(QEF):
    """A QEF over one source characteristic, per a :class:`CharacteristicSpec`."""

    def __init__(self, universe: Universe, spec: CharacteristicSpec):
        self.spec = spec
        self.name = spec.name
        self._aggregate = get_aggregator(spec.aggregator)
        self._minimum, self._maximum = universe.characteristic_range(
            spec.characteristic
        )

    @property
    def aggregate(self) -> Aggregator:
        """The resolved aggregation function (for the batch evaluator)."""
        return self._aggregate

    def normalized(self, value: float) -> float:
        """Normalize a raw characteristic value into [0, 1]."""
        span = self._maximum - self._minimum
        if span <= 0.0:
            return 1.0
        fraction = (value - self._minimum) / span
        if not self.spec.higher_is_better:
            fraction = 1.0 - fraction
        return clamp_unit(fraction)

    def __call__(self, sources: Sequence[Source]) -> float:
        pairs = [
            (
                self.normalized(s.characteristics[self.spec.characteristic]),
                s.cardinality or 0,
            )
            for s in sources
            if self.spec.characteristic in s.characteristics
        ]
        if not pairs:
            return 0.0
        return clamp_unit(self._aggregate(pairs))

    def __repr__(self) -> str:
        return (
            f"CharacteristicQEF({self.spec.characteristic!r}, "
            f"aggregator={self.spec.aggregator!r})"
        )
