"""Quality evaluation: the four built-in QEFs, characteristic QEFs, Q(S)."""

from .base import QEF, clamp_unit
from .characteristics import (
    AGGREGATORS,
    CharacteristicQEF,
    get_aggregator,
    max_agg,
    mean,
    median,
    min_agg,
    product,
    wsum,
)
from .data_metrics import (
    CardinalityQEF,
    CoverageQEF,
    RedundancyQEF,
    RedundancyRatioQEF,
    estimated_distinct,
)
from .compiled import EvalContext
from .matching_quality import MatchingQEF
from .overall import INFEASIBLE_PENALTY, Objective

__all__ = [
    "AGGREGATORS",
    "CardinalityQEF",
    "CharacteristicQEF",
    "CoverageQEF",
    "EvalContext",
    "INFEASIBLE_PENALTY",
    "MatchingQEF",
    "Objective",
    "QEF",
    "RedundancyQEF",
    "RedundancyRatioQEF",
    "clamp_unit",
    "estimated_distinct",
    "get_aggregator",
    "max_agg",
    "mean",
    "median",
    "min_agg",
    "product",
    "wsum",
]
