"""The overall objective ``Q(S) = Σ w_i F_i(S)`` (paper §2.3, §2.5).

:class:`Objective` wires a :class:`~repro.core.Problem` to concrete QEF
implementations and evaluates selections for the optimizers:

* the matching operator is invoked once per selection (memoized) and its
  result feeds both ``F1`` and the feasibility check — the mediated schema
  must be valid on the constrained sources (the paper's NULL result);
* QEFs with zero weight are skipped;
* infeasible selections receive a discounted *objective* below their raw
  quality so metaheuristics can traverse them without ever preferring them
  to a feasible solution (an implementation device, not part of the
  paper's model — see DESIGN.md).
"""

from __future__ import annotations

from collections.abc import Iterable

from ..core import (
    CARDINALITY,
    COVERAGE,
    MATCHING,
    REDUNDANCY,
    Problem,
    QualityFunction,
    Solution,
)
from ..exceptions import WeightError
from ..explain.events import SelectionScored, get_event_log
from ..matching.incremental import IncrementalMatchOperator
from ..matching.operator import MatchOperator
from ..similarity.matrix import NameSimilarityMatrix
from ..similarity.measures import SimilarityMeasure
from ..telemetry import get_telemetry
from .characteristics import CharacteristicQEF
from .data_metrics import CardinalityQEF, CoverageQEF, RedundancyQEF

#: Multiplier applied to the quality of infeasible selections when forming
#: their search objective.  Any value in (0, 1) preserves the invariant
#: that a feasible selection always outranks an infeasible one of equal
#: quality.
INFEASIBLE_PENALTY = 0.25


class Objective:
    """Memoizing evaluator of ``Q(S)`` for a fixed problem."""

    def __init__(
        self,
        problem: Problem,
        similarity: SimilarityMeasure | NameSimilarityMatrix | None = None,
        linkage: str = "single",
        prune: bool = True,
        cache_size: int = 200_000,
        exact_data_metrics: bool = False,
        incremental: bool = False,
        match_operator: MatchOperator | None = None,
    ):
        self.problem = problem
        if match_operator is not None:
            # Reuse a pre-built (already warmed) operator.  The caller is
            # responsible for it matching the problem's θ/β/constraints —
            # the session layer keys its operator cache on exactly those.
            self.match_operator = match_operator
        else:
            operator_cls = (
                IncrementalMatchOperator if incremental else MatchOperator
            )
            self.match_operator = operator_cls.for_problem(
                problem, similarity=similarity, linkage=linkage, prune=prune
            )
        self._exact_data_metrics = exact_data_metrics
        self._qefs = self._build_qefs(problem)
        self._cache: dict[frozenset[int], Solution] = {}
        self._cache_size = cache_size
        self._evaluations = 0
        self._cache_hits = 0

    @property
    def evaluations(self) -> int:
        """Number of *distinct* selections evaluated so far."""
        return self._evaluations

    @property
    def cache_hits(self) -> int:
        """Number of evaluations served from the selection memo."""
        return self._cache_hits

    @property
    def universe(self):
        """The problem's universe (convenience for optimizers)."""
        return self.problem.universe

    def evaluate(self, source_ids: Iterable[int]) -> Solution:
        """Evaluate a selection, returning a :class:`~repro.core.Solution`."""
        telemetry = get_telemetry()
        selection = frozenset(source_ids)
        cached = self._cache.get(selection)
        if cached is not None:
            self._cache_hits += 1
            telemetry.metrics.counter("objective.cache_hits").inc()
            return cached
        telemetry.metrics.counter("objective.evaluations").inc()
        with telemetry.span(
            "objective.evaluate", size=len(selection)
        ) as span:
            solution = self._evaluate_uncached(selection)
            span.set(feasible=solution.feasible)
        if len(self._cache) >= self._cache_size:
            self._cache.clear()
        self._cache[selection] = solution
        self._evaluations += 1
        return solution

    def __call__(self, source_ids: Iterable[int]) -> Solution:
        return self.evaluate(source_ids)

    # -- internals ----------------------------------------------------------

    def _build_qefs(self, problem: Problem) -> dict[str, QualityFunction]:
        universe = problem.universe
        exact = self._exact_data_metrics
        qefs: dict[str, QualityFunction] = {
            CARDINALITY: CardinalityQEF(universe),
            COVERAGE: CoverageQEF(universe, exact=exact),
            REDUNDANCY: RedundancyQEF(exact=exact),
        }
        for spec in problem.characteristic_qefs:
            qefs[spec.name] = CharacteristicQEF(universe, spec)
        for qef in problem.custom_qefs:
            qefs[qef.name] = qef
        weighted = set(problem.weights) - {MATCHING}
        missing = weighted - set(qefs)
        if missing:
            raise WeightError(
                f"no QEF implementation for weighted name(s) "
                f"{sorted(missing)}"
            )
        return qefs

    def _evaluate_uncached(self, selection: frozenset[int]) -> Solution:
        problem = self.problem
        reasons: list[str] = []
        if not selection:
            reasons.append("empty selection")
        if len(selection) > problem.max_sources:
            reasons.append(
                f"{len(selection)} sources exceed the budget m="
                f"{problem.max_sources}"
            )
        unknown = selection - problem.universe.source_ids
        if unknown:
            reasons.append(f"unknown source ids {sorted(unknown)}")
            return Solution(
                selected=selection,
                schema=None,
                objective=float("-inf"),
                quality=0.0,
                feasible=False,
                infeasibility=tuple(reasons),
            )

        telemetry = get_telemetry()
        match = self.match_operator.match(selection)
        if match.is_null:
            reasons.extend(match.reasons)

        sources = problem.universe.select(selection)
        scores: dict[str, float] = {}
        quality = 0.0
        for name, weight in problem.weights.items():
            if name == MATCHING:
                value = match.quality
            elif weight == 0.0:
                continue
            else:
                # Span-per-QEF (a "qef.<name>" family) so the summary
                # exporter reports where evaluation time actually goes.
                with telemetry.span("qef." + name, size=len(sources)):
                    value = self._qefs[name](sources)
            scores[name] = value
            quality += weight * value

        feasible = not reasons
        if feasible:
            objective = quality
        else:
            objective = INFEASIBLE_PENALTY * quality
            telemetry.metrics.counter(
                "objective.infeasible_discounts"
            ).inc()
        log = get_event_log()
        if log.enabled:
            log.emit(
                SelectionScored(
                    selected=tuple(sorted(selection)),
                    scores=dict(scores),
                    weights={
                        name: problem.weights[name] for name in scores
                    },
                    quality=quality,
                    objective=objective,
                    feasible=feasible,
                    reasons=tuple(reasons),
                )
            )
        return Solution(
            selected=selection,
            schema=match.schema,
            objective=objective,
            quality=quality,
            qef_scores=scores,
            feasible=feasible,
            infeasibility=tuple(reasons),
        )
