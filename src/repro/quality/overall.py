"""The overall objective ``Q(S) = Σ w_i F_i(S)`` (paper §2.3, §2.5).

:class:`Objective` wires a :class:`~repro.core.Problem` to concrete QEF
implementations and evaluates selections for the optimizers:

* the matching operator is invoked once per selection (memoized) and its
  result feeds both ``F1`` and the feasibility check — the mediated schema
  must be valid on the constrained sources (the paper's NULL result);
* QEFs with zero weight are skipped;
* infeasible selections receive a discounted *objective* below their raw
  quality so metaheuristics can traverse them without ever preferring them
  to a feasible solution (an implementation device, not part of the
  paper's model — see DESIGN.md).

At construction the objective also compiles the universe into an
:class:`~repro.quality.compiled.EvalContext` — columnar numpy state for
the data-dependent and characteristic QEFs — so :meth:`evaluate_batch`
can score a whole neighborhood of candidate selections with a handful of
vectorized kernels instead of one Python QEF walk per candidate.  Both
paths share :meth:`_assemble`, so a batch-scored :class:`Solution` is
bit-identical to the scalar one (property-tested in
``tests/quality/test_batch_eval.py``).

The selection memo is shared by both paths and uses LRU eviction: when
full, the least-recently-used entry is dropped (counted by the
``objective.cache_evictions`` metric) instead of flushing the whole memo.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable, Sequence

from ..core import (
    CARDINALITY,
    COVERAGE,
    MATCHING,
    REDUNDANCY,
    Problem,
    QualityFunction,
    Solution,
)
from ..exceptions import WeightError
from ..explain.events import SelectionScored, get_event_log
from ..matching.incremental import IncrementalMatchOperator
from ..matching.operator import MatchOperator
from ..similarity.matrix import NameSimilarityMatrix
from ..similarity.measures import SimilarityMeasure
from ..telemetry import get_profiler, get_telemetry
from .characteristics import CharacteristicQEF
from .compiled import EvalContext
from .data_metrics import CardinalityQEF, CoverageQEF, RedundancyQEF

#: Multiplier applied to the quality of infeasible selections when forming
#: their search objective.  Any value in (0, 1) preserves the invariant
#: that a feasible selection always outranks an infeasible one of equal
#: quality.
INFEASIBLE_PENALTY = 0.25


class Objective:
    """Memoizing evaluator of ``Q(S)`` for a fixed problem."""

    def __init__(
        self,
        problem: Problem,
        similarity: SimilarityMeasure | NameSimilarityMatrix | None = None,
        linkage: str = "single",
        prune: bool = True,
        cache_size: int = 200_000,
        exact_data_metrics: bool = False,
        incremental: bool = False,
        match_operator: MatchOperator | None = None,
        context: EvalContext | None = None,
        patch_context_from: EvalContext | None = None,
    ):
        self.problem = problem
        if match_operator is not None:
            # Reuse a pre-built (already warmed) operator.  The caller is
            # responsible for it matching the problem's θ/β/constraints —
            # the session layer keys its operator cache on exactly those.
            self.match_operator = match_operator
        else:
            operator_cls = (
                IncrementalMatchOperator if incremental else MatchOperator
            )
            self.match_operator = operator_cls.for_problem(
                problem, similarity=similarity, linkage=linkage, prune=prune
            )
        self._exact_data_metrics = exact_data_metrics
        self._qefs = self._build_qefs(problem)
        # Compiled columnar state: adopt the caller's prebuilt context
        # verbatim (it must describe this exact problem), patch a previous
        # one for an edited universe/QEF set, or compile cold.  All three
        # yield bit-identical scoring; the delta pipeline
        # (repro.session.delta) picks the cheapest applicable source.
        if context is not None:
            self._context = context
        elif patch_context_from is not None:
            self._context = EvalContext.patched(
                problem, self._qefs, patch_context_from
            )
        else:
            self._context = EvalContext.compile(problem, self._qefs)
        self._cache: OrderedDict[frozenset[int], Solution] = OrderedDict()
        self._cache_size = cache_size
        self._evaluations = 0
        self._cache_hits = 0
        self._cache_evictions = 0
        get_profiler().add_cache_probe("objective.memo", self.cache_info)

    @property
    def evaluations(self) -> int:
        """Number of *distinct* selections evaluated so far."""
        return self._evaluations

    @property
    def cache_hits(self) -> int:
        """Number of evaluations served from the selection memo."""
        return self._cache_hits

    @property
    def cache_evictions(self) -> int:
        """Number of memo entries evicted (LRU) since construction."""
        return self._cache_evictions

    def cache_info(self) -> dict[str, int]:
        """``Q(S)`` memo statistics for diagnostics and cache probes.

        ``misses`` equals :attr:`evaluations` — every distinct selection
        scored is exactly one memo miss.
        """
        return {
            "entries": len(self._cache),
            "capacity": self._cache_size,
            "hits": self._cache_hits,
            "misses": self._evaluations,
            "evictions": self._cache_evictions,
        }

    @property
    def context(self) -> EvalContext:
        """The compiled columnar evaluation state for this universe."""
        return self._context

    @property
    def universe(self):
        """The problem's universe (convenience for optimizers)."""
        return self.problem.universe

    def reweigh(self, problem: Problem) -> dict[str, int]:
        """Re-point at a weights-only edit, carrying the memo across.

        The QEF values of a selection do not depend on the weights — only
        the weighted sum does — and every cached :class:`Solution` already
        carries its per-QEF components in ``qef_scores``.  So a weight
        change re-derives each cached entry by running the same weighting
        loop as :meth:`_assemble` over the cached components: identical
        values folded in the identical ``weights.items()`` order means the
        re-derived quality is bit-identical to a cold re-evaluation.
        Feasibility and its reasons never depend on weights either, so
        they carry over, as does the infeasibility discount.

        Entries missing a component some newly non-zero weight now needs
        (the QEF was skipped at weight 0 when the entry was scored) are
        dropped and re-scored on demand.  The caller must change *only*
        the weights — same universe, constraints, θ/β, budget and QEF
        set; the session's delta planner guarantees this.  Returns
        kept/dropped entry counts.
        """
        weights = problem.weights
        self.problem = problem
        stats = {"kept": 0, "dropped": 0}
        fresh: OrderedDict[frozenset[int], Solution] = OrderedDict()
        for selection, solution in self._cache.items():
            reweighed = self._reweighed(solution, weights)
            if reweighed is None:
                stats["dropped"] += 1
            else:
                fresh[selection] = reweighed
                stats["kept"] += 1
        self._cache = fresh
        metrics = get_telemetry().metrics
        metrics.counter("objective.memo_reweighed").inc(stats["kept"])
        if stats["dropped"]:
            metrics.counter("objective.memo_reweigh_drops").inc(
                stats["dropped"]
            )
        return stats

    @staticmethod
    def _reweighed(solution: Solution, weights) -> Solution | None:
        """``solution`` under new weights, or None when a score is missing."""
        cached = solution.qef_scores
        scores: dict[str, float] = {}
        quality = 0.0
        # Mirror _assemble exactly: MATCHING always participates (even at
        # weight 0), other zero-weight QEFs are skipped.
        for name, weight in weights.items():
            if name != MATCHING and weight == 0.0:
                continue
            if name not in cached:
                return None
            value = cached[name]
            scores[name] = value
            quality += weight * value
        objective = (
            quality if solution.feasible else INFEASIBLE_PENALTY * quality
        )
        return Solution(
            selected=solution.selected,
            schema=solution.schema,
            objective=objective,
            quality=quality,
            qef_scores=scores,
            feasible=solution.feasible,
            infeasibility=solution.infeasibility,
        )

    def evaluate(self, source_ids: Iterable[int]) -> Solution:
        """Evaluate a selection, returning a :class:`~repro.core.Solution`."""
        telemetry = get_telemetry()
        selection = frozenset(source_ids)
        cached = self._cache_lookup(selection)
        if cached is not None:
            self._cache_hits += 1
            telemetry.metrics.counter("objective.cache_hits").inc()
            return cached
        telemetry.metrics.counter("objective.evaluations").inc()
        with telemetry.span(
            "objective.evaluate", size=len(selection)
        ) as span:
            solution = self._evaluate_uncached(selection)
            span.set(feasible=solution.feasible)
        self._cache_store(selection, solution)
        self._evaluations += 1
        return solution

    def evaluate_batch(
        self, selections: Sequence[Iterable[int]]
    ) -> list[Solution]:
        """Evaluate a batch of selections through the columnar kernels.

        Order-preserving: ``result[i]`` corresponds to ``selections[i]``.
        The memo is consulted first (duplicates within the batch count as
        cache hits, exactly as repeated :meth:`evaluate` calls would);
        distinct uncached selections are scored together — one masked
        OR-reduction for ``D(S)``, vectorized cardinality sums, and the
        precompiled characteristic matrix — then assembled per candidate
        by the same code path as the scalar evaluator, so every
        :class:`Solution` field is bit-identical to :meth:`evaluate`.
        """
        telemetry = get_telemetry()
        batch = [frozenset(selection) for selection in selections]
        telemetry.metrics.counter("objective.batch_calls").inc()
        telemetry.metrics.counter("objective.batch_candidates").inc(
            len(batch)
        )
        results: list[Solution | None] = [None] * len(batch)
        pending: dict[frozenset[int], list[int]] = {}
        for position, selection in enumerate(batch):
            cached = self._cache_lookup(selection)
            if cached is not None:
                self._cache_hits += 1
                telemetry.metrics.counter("objective.cache_hits").inc()
                results[position] = cached
            elif selection in pending:
                # A duplicate inside the batch: the first occurrence will
                # populate the memo, so this one is a cache hit — the same
                # accounting as two consecutive evaluate() calls.
                self._cache_hits += 1
                telemetry.metrics.counter("objective.cache_hits").inc()
                pending[selection].append(position)
            else:
                pending[selection] = [position]
        if pending:
            with telemetry.span(
                "objective.batch_evaluate",
                size=len(batch),
                distinct=len(pending),
            ):
                self._evaluate_pending(pending, results, telemetry)
        return results

    def __call__(self, source_ids: Iterable[int]) -> Solution:
        return self.evaluate(source_ids)

    # -- memo ---------------------------------------------------------------

    def _cache_lookup(self, selection: frozenset[int]) -> Solution | None:
        cached = self._cache.get(selection)
        if cached is not None:
            self._cache.move_to_end(selection)
        return cached

    def _cache_store(
        self, selection: frozenset[int], solution: Solution
    ) -> None:
        if self._cache and len(self._cache) >= self._cache_size:
            metrics = get_telemetry().metrics
            while self._cache and len(self._cache) >= self._cache_size:
                self._cache.popitem(last=False)
                self._cache_evictions += 1
                metrics.counter("objective.cache_evictions").inc()
        self._cache[selection] = solution

    # -- internals ----------------------------------------------------------

    def _build_qefs(self, problem: Problem) -> dict[str, QualityFunction]:
        universe = problem.universe
        exact = self._exact_data_metrics
        qefs: dict[str, QualityFunction] = {
            CARDINALITY: CardinalityQEF(universe),
            COVERAGE: CoverageQEF(universe, exact=exact),
            REDUNDANCY: RedundancyQEF(exact=exact),
        }
        for spec in problem.characteristic_qefs:
            qefs[spec.name] = CharacteristicQEF(universe, spec)
        for qef in problem.custom_qefs:
            qefs[qef.name] = qef
        weighted = set(problem.weights) - {MATCHING}
        missing = weighted - set(qefs)
        if missing:
            raise WeightError(
                f"no QEF implementation for weighted name(s) "
                f"{sorted(missing)}"
            )
        return qefs

    def _evaluate_pending(
        self,
        pending: dict[frozenset[int], list[int]],
        results: list[Solution | None],
        telemetry,
    ) -> None:
        """Score the distinct uncached selections of one batch."""
        known_ids = self.problem.universe.source_ids
        vectorizable = [
            selection for selection in pending if selection <= known_ids
        ]
        names = [
            name
            for name, weight in self.problem.weights.items()
            if name != MATCHING and weight != 0.0
        ]
        rows: dict[frozenset[int], dict[str, float]] = {}
        if vectorizable:
            scored = self._context.score_batch(vectorizable, names)
            for name, values in scored.items():
                for selection, value in zip(vectorizable, values):
                    rows.setdefault(selection, {})[name] = value
        for selection, positions in pending.items():
            telemetry.metrics.counter("objective.evaluations").inc()
            if selection <= known_ids:
                solution = self._assemble(selection, rows.get(selection, {}))
            else:
                # Unknown source ids: route through the scalar evaluator
                # for its exact early-return Solution.
                telemetry.metrics.counter("objective.batch_fallbacks").inc()
                solution = self._evaluate_uncached(selection)
            self._cache_store(selection, solution)
            self._evaluations += 1
            for position in positions:
                results[position] = solution

    def _evaluate_uncached(self, selection: frozenset[int]) -> Solution:
        unknown = selection - self.problem.universe.source_ids
        if unknown:
            reasons = self._base_reasons(selection)
            reasons.append(f"unknown source ids {sorted(unknown)}")
            return Solution(
                selected=selection,
                schema=None,
                objective=float("-inf"),
                quality=0.0,
                feasible=False,
                infeasibility=tuple(reasons),
            )
        return self._assemble(selection, {})

    def _base_reasons(self, selection: frozenset[int]) -> list[str]:
        reasons: list[str] = []
        if not selection:
            reasons.append("empty selection")
        if len(selection) > self.problem.max_sources:
            reasons.append(
                f"{len(selection)} sources exceed the budget m="
                f"{self.problem.max_sources}"
            )
        return reasons

    def _assemble(
        self, selection: frozenset[int], vector_row: dict[str, float]
    ) -> Solution:
        """Build a :class:`Solution` from (possibly pre-scored) QEF values.

        ``vector_row`` holds QEF values already computed by the columnar
        kernels; anything missing is scored by the scalar QEF right here.
        The scalar evaluator calls this with an empty row, so both paths
        run the identical weighting loop in the identical order.
        """
        problem = self.problem
        telemetry = get_telemetry()
        reasons = self._base_reasons(selection)

        match = self.match_operator.match(selection)
        if match.is_null:
            reasons.extend(match.reasons)

        sources = None
        scores: dict[str, float] = {}
        quality = 0.0
        for name, weight in problem.weights.items():
            if name == MATCHING:
                value = match.quality
            elif weight == 0.0:
                continue
            elif name in vector_row:
                value = vector_row[name]
            else:
                if sources is None:
                    sources = problem.universe.select(selection)
                # Span-per-QEF (a "qef.<name>" family) so the summary
                # exporter reports where evaluation time actually goes.
                with telemetry.span("qef." + name, size=len(sources)):
                    value = self._qefs[name](sources)
            scores[name] = value
            quality += weight * value

        feasible = not reasons
        if feasible:
            objective = quality
        else:
            objective = INFEASIBLE_PENALTY * quality
            telemetry.metrics.counter(
                "objective.infeasible_discounts"
            ).inc()
        log = get_event_log()
        if log.enabled:
            log.emit(
                SelectionScored(
                    selected=tuple(sorted(selection)),
                    scores=dict(scores),
                    weights={
                        name: problem.weights[name] for name in scores
                    },
                    quality=quality,
                    objective=objective,
                    feasible=feasible,
                    reasons=tuple(reasons),
                )
            )
        return Solution(
            selected=selection,
            schema=match.schema,
            objective=objective,
            quality=quality,
            qef_scores=scores,
            feasible=feasible,
            infeasibility=tuple(reasons),
        )
