"""The compiled columnar evaluation core behind ``Objective.evaluate_batch``.

The scalar QEFs (:mod:`repro.quality.data_metrics`,
:mod:`repro.quality.characteristics`) walk Python ``Source`` objects per
selection; every tabu iteration repeats that walk dozens of times.
:class:`EvalContext` compiles the universe once — at
:class:`~repro.quality.Objective` construction — into numpy columnar state:

* a sorted source-id vector and its index map;
* a cooperative mask and a cooperative-cardinality vector;
* a stacked PCSA word matrix (:class:`~repro.sketch.StackedSketches`) so
  ``D(S)`` for a whole batch of selections is one masked bitwise-OR
  reduction plus a vectorized estimator;
* a per-source characteristic score matrix: for every characteristic QEF,
  the normalized value and weighting cardinality of each source that
  reports it.

Selections are represented as boolean masks over the id vector.  The
kernels reproduce the scalar QEFs *bit for bit*: every float operation that
could be ordering- or rounding-sensitive (the PCSA transcendental tail, the
redundancy/coverage ratios, aggregator folds) runs per candidate in the
same Python-float arithmetic as the scalar path, while the bulk work — the
signature unions, the lowest-zero means, the cardinality sums (exact
integer arithmetic) — is vectorized.  The property test in
``tests/quality/test_batch_eval.py`` enforces the equivalence.

Vectorization is best-effort per QEF: exact-counting data metrics,
subclassed QEFs and custom QEFs are simply not claimed by
:attr:`EvalContext.vector_names`, and the objective scores them per
candidate exactly as before.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..core import CARDINALITY, COVERAGE, REDUNDANCY, Problem
from ..sketch.stacked import StackedSketches, pcsa_estimate
from ..telemetry import get_profiler
from .base import clamp_unit
from .characteristics import CharacteristicQEF
from .data_metrics import CardinalityQEF, CoverageQEF, RedundancyQEF


class EvalContext:
    """Columnar state for batch-scoring selections of one universe.

    Build with :meth:`compile`; score with :meth:`score_batch`.  The
    context only claims the QEF names in :attr:`vector_names`; everything
    else stays on the scalar per-candidate path.
    """

    __slots__ = (
        "ids",
        "index_of",
        "coop_mask",
        "cards",
        "stacked",
        "total_cardinality",
        "universe_distinct",
        "characteristics",
        "vector_names",
    )

    def __init__(
        self,
        ids: np.ndarray,
        coop_mask: np.ndarray,
        cards: np.ndarray,
        stacked: StackedSketches | None,
        total_cardinality: int,
        universe_distinct: float,
        characteristics: dict[str, tuple[CharacteristicQEF, list]],
        vector_names: frozenset[str],
    ):
        self.ids = ids
        self.index_of = {int(sid): i for i, sid in enumerate(ids.tolist())}
        self.coop_mask = coop_mask
        self.cards = cards
        self.stacked = stacked
        self.total_cardinality = total_cardinality
        self.universe_distinct = universe_distinct
        self.characteristics = characteristics
        self.vector_names = vector_names

    def __getstate__(self) -> dict:
        """Pickle every slot except the derived id→row index."""
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot != "index_of"
        }

    def __setstate__(self, state: dict) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self.index_of = {
            int(sid): i for i, sid in enumerate(self.ids.tolist())
        }

    @classmethod
    def compile(cls, problem: Problem, qefs: dict) -> "EvalContext":
        """Compile the universe's per-source state for the given QEFs.

        ``qefs`` is the objective's name→QEF mapping; only stock
        :class:`CardinalityQEF` / :class:`CoverageQEF` /
        :class:`RedundancyQEF` (estimated, not exact) and stock
        :class:`CharacteristicQEF` instances are vectorized.
        """
        with get_profiler().phase("compile"):
            return cls._compile(problem, qefs)

    @classmethod
    def patched(
        cls, problem: Problem, qefs: dict, previous: "EvalContext"
    ) -> "EvalContext":
        """Recompile for an edited problem, splicing unchanged sketch rows.

        The expensive part of a compile — reading every source's PCSA
        words into the stacked matrix — is skipped for sources that were
        already rows of ``previous``: their word rows are copied over
        (:meth:`~repro.sketch.StackedSketches.respliced`), and only
        sources added since then contribute fresh sketch reads.  Every
        scalar (cardinality totals, the universe-distinct denominator,
        characteristic normalization) is recomputed from the supplied
        QEFs by the very same code as :meth:`compile`, because a universe
        edit can shift all of them (a new source can extend a
        characteristic's range, changing every normalized value).  The
        result is therefore bit-identical to a cold compile of the same
        problem.

        Callers must ensure that a source id present in both universes
        refers to the *same* source — the session's delta planner falls
        back to a cold compile when an id is rebound.
        """
        with get_profiler().phase("compile"):
            universe = problem.universe
            sources = universe.select(universe.source_ids)
            stacked: StackedSketches | None = None
            if previous.stacked is not None:
                index_of = previous.index_of
                entries: list[int | object | None] = []
                for source in sources:
                    row = index_of.get(source.source_id)
                    if row is not None:
                        entries.append(row)
                    elif source.is_cooperative:
                        entries.append(source.sketch)
                    else:
                        entries.append(None)
                stacked = previous.stacked.respliced(entries)
            return cls._compile(problem, qefs, stacked=stacked)

    @classmethod
    def _compile(
        cls,
        problem: Problem,
        qefs: dict,
        stacked: StackedSketches | None = None,
    ) -> "EvalContext":
        universe = problem.universe
        sources = universe.select(universe.source_ids)
        ids = np.array([s.source_id for s in sources], dtype=np.int64)
        coop_mask = np.array([s.is_cooperative for s in sources], dtype=bool)
        cards = np.array(
            [
                s.cardinality if s.is_cooperative else 0
                for s in sources
            ],
            dtype=np.int64,
        )

        vector_names: set[str] = set()
        total_cardinality = 0
        universe_distinct = 0.0
        cardinality_qef = qefs.get(CARDINALITY)
        if type(cardinality_qef) is CardinalityQEF:
            total_cardinality = cardinality_qef.total
            vector_names.add(CARDINALITY)

        if stacked is None:
            stacked = StackedSketches.from_sketches(
                [s.sketch if s.is_cooperative else None for s in sources]
            )
        if stacked is not None:
            coverage_qef = qefs.get(COVERAGE)
            if type(coverage_qef) is CoverageQEF and not coverage_qef.exact:
                universe_distinct = coverage_qef.universe_distinct
                vector_names.add(COVERAGE)
            redundancy_qef = qefs.get(REDUNDANCY)
            if (
                type(redundancy_qef) is RedundancyQEF
                and not redundancy_qef.exact
            ):
                vector_names.add(REDUNDANCY)

        characteristics: dict[str, tuple[CharacteristicQEF, list]] = {}
        for name, qef in qefs.items():
            if type(qef) is not CharacteristicQEF:
                continue
            key = qef.spec.characteristic
            pairs: list[tuple[float, int] | None] = [
                (
                    (qef.normalized(s.characteristics[key]), s.cardinality or 0)
                    if key in s.characteristics
                    else None
                )
                for s in sources
            ]
            characteristics[name] = (qef, pairs)
            vector_names.add(name)

        return cls(
            ids=ids,
            coop_mask=coop_mask,
            cards=cards,
            stacked=stacked,
            total_cardinality=total_cardinality,
            universe_distinct=universe_distinct,
            characteristics=characteristics,
            vector_names=frozenset(vector_names),
        )

    # -- scoring -------------------------------------------------------------

    def masks(self, selections: Sequence[Iterable[int]]) -> np.ndarray:
        """Boolean selection masks, one row per selection."""
        batch = len(selections)
        masks = np.zeros((batch, len(self.ids)), dtype=bool)
        index_of = self.index_of
        for row, selection in enumerate(selections):
            for sid in selection:
                masks[row, index_of[sid]] = True
        return masks

    def score_batch(
        self,
        selections: Sequence[frozenset[int]],
        names: Iterable[str],
    ) -> dict[str, list[float]]:
        """Score the requested vectorizable QEFs for a batch of selections.

        Returns name → per-candidate values, for ``names ∩ vector_names``
        only; every value is bit-identical to the corresponding scalar QEF
        call on ``universe.select(selection)``.
        """
        wanted = set(names) & self.vector_names
        if not wanted or not selections:
            return {}
        masks = self.masks(selections)
        coop = masks & self.coop_mask
        masked_cards = np.where(coop, self.cards, 0)
        totals = masked_cards.sum(axis=1)

        out: dict[str, list[float]] = {}
        if CARDINALITY in wanted:
            denominator = self.total_cardinality
            if denominator <= 0:
                out[CARDINALITY] = [0.0] * len(selections)
            else:
                out[CARDINALITY] = [
                    clamp_unit(int(total) / denominator) for total in totals
                ]

        if COVERAGE in wanted or REDUNDANCY in wanted:
            counts = coop.sum(axis=1)
            largest = masked_cards.max(axis=1)
            distinct = self._distinct_rows(coop, counts, largest, totals)
            if COVERAGE in wanted:
                denominator = self.universe_distinct
                if denominator <= 0.0:
                    out[COVERAGE] = [0.0] * len(selections)
                else:
                    out[COVERAGE] = [
                        clamp_unit(d / denominator) for d in distinct
                    ]
            if REDUNDANCY in wanted:
                out[REDUNDANCY] = self._redundancy_rows(
                    counts, totals, distinct
                )

        char_names = [n for n in wanted if n in self.characteristics]
        if char_names:
            sorted_rows = [
                np.nonzero(masks[row])[0].tolist()
                for row in range(len(selections))
            ]
            for name in char_names:
                qef, pairs_by_index = self.characteristics[name]
                out[name] = self._characteristic_rows(
                    qef, pairs_by_index, sorted_rows
                )
        return out

    # -- kernels -------------------------------------------------------------

    def _distinct_rows(self, coop, counts, largest, totals) -> list[float]:
        """``D(S)`` per candidate — the scalar ``estimated_distinct``.

        One batched OR-reduction replaces the per-selection sketch list;
        the clamp to [largest single source, cardinality sum] runs in
        Python floats like the scalar path.
        """
        union_words = self.stacked.union_rows(coop)
        means = self.stacked.mean_rho(union_words)
        num_maps = self.stacked.num_maps
        distinct: list[float] = []
        for row in range(len(means)):
            if int(counts[row]) == 0:
                distinct.append(0.0)
                continue
            estimate = pcsa_estimate(float(means[row]), num_maps)
            lower = float(int(largest[row]))
            upper = float(int(totals[row]))
            distinct.append(min(max(estimate, lower), upper))
        return distinct

    @staticmethod
    def _redundancy_rows(counts, totals, distinct) -> list[float]:
        """F4 per candidate, mirroring :class:`RedundancyQEF` exactly."""
        values: list[float] = []
        for row in range(len(counts)):
            n_coop = int(counts[row])
            if n_coop <= 1:
                values.append(1.0)
                continue
            total = int(totals[row])
            if total <= 0:
                values.append(1.0)
                continue
            overlap = (total - distinct[row]) / total
            worst = (n_coop - 1) / n_coop
            values.append(clamp_unit(1.0 - overlap / worst))
        return values

    @staticmethod
    def _characteristic_rows(qef, pairs_by_index, sorted_rows) -> list[float]:
        """A characteristic QEF per candidate, from the precompiled matrix.

        The aggregator folds the same (normalized value, cardinality)
        pairs in the same ascending-id order as the scalar call, so the
        float accumulation is identical.
        """
        aggregate = qef.aggregate
        values: list[float] = []
        for indexes in sorted_rows:
            pairs = [
                pair
                for index in indexes
                if (pair := pairs_by_index[index]) is not None
            ]
            if not pairs:
                values.append(0.0)
            else:
                values.append(clamp_unit(aggregate(pairs)))
        return values

    def nbytes(self) -> int:
        """Approximate size of the compiled columnar state in bytes."""
        total = int(self.ids.nbytes + self.coop_mask.nbytes + self.cards.nbytes)
        if self.stacked is not None:
            total += self.stacked.nbytes()
        return total

    def __repr__(self) -> str:
        return (
            f"EvalContext(sources={len(self.ids)}, "
            f"vector_names={sorted(self.vector_names)})"
        )
