"""Quality Evaluation Function (QEF) base class.

A QEF ``F_k(S)`` maps a set of selected sources to an aggregate quality in
[0, 1] — higher is better (paper §2.3).  The abstract base class here is a
convenience for implementers; any object satisfying the structural
:class:`repro.core.QualityFunction` protocol (a ``name`` plus a call taking
the selected sources) is accepted everywhere.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from ..core import Source


class QEF(ABC):
    """Base class for quality evaluation functions."""

    #: Unique QEF name; weights are keyed by it.
    name: str = "abstract"

    @abstractmethod
    def __call__(self, sources: Sequence[Source]) -> float:
        """Evaluate the QEF on the selected sources; result in [0, 1]."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def clamp_unit(value: float) -> float:
    """Clamp a score into [0, 1] (guards estimator noise at the edges)."""
    if value < 0.0:
        return 0.0
    if value > 1.0:
        return 1.0
    return value
