"""F1: the matching-quality QEF (paper §3).

``F1(S)`` is the quality of the best matching the clustering algorithm
finds among the schemas of the selected sources — the mean, over the GAs of
the generated mediated schema, of each GA's internal quality (the maximum
similarity between any two of its member attributes).

The standalone QEF below wraps a bound :class:`~repro.matching.MatchOperator`
so F1 can be used like any other QEF; the central
:class:`~repro.quality.Objective` calls the operator directly instead
because it also needs the schema itself.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..core import Source
from ..matching.operator import MatchOperator
from .base import QEF


class MatchingQEF(QEF):
    """F1 as a plain QEF over selected sources."""

    name = "matching"

    def __init__(self, operator: MatchOperator):
        self.operator = operator

    def __call__(self, sources: Sequence[Source]) -> float:
        result = self.operator.match(s.source_id for s in sources)
        return result.quality
